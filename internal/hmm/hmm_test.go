package hmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sampleSequence draws a sequence of length T from the model.
func sampleSequence(h *Model, T int, rng *rand.Rand) []int {
	obs := make([]int, T)
	state := sampleIndex(h.Pi, rng)
	for t := 0; t < T; t++ {
		obs[t] = sampleIndex(h.B[state], rng)
		state = sampleIndex(h.A[state], rng)
	}
	return obs
}

func sampleIndex(dist []float64, rng *rand.Rand) int {
	r := rng.Float64()
	var c float64
	for i, p := range dist {
		c += p
		if r < c {
			return i
		}
	}
	return len(dist) - 1
}

// twoStateModel is a strongly identifiable ground-truth model used by
// several tests: state 0 emits mostly symbol 0, state 1 mostly symbol 1,
// and states are sticky.
func twoStateModel() *Model {
	h := New(2, 2)
	h.Pi = []float64{0.9, 0.1}
	h.A = [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	h.B = [][]float64{{0.95, 0.05}, {0.1, 0.9}}
	return h
}

func TestNewUniform(t *testing.T) {
	h := New(3, 4)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 0; i < 3; i++ {
		if got := h.A[0][i]; math.Abs(got-1.0/3) > 1e-12 {
			t.Errorf("A[0][%d] = %v, want 1/3", i, got)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(0, 3)
}

func TestForwardRowsNormalized(t *testing.T) {
	h := twoStateModel()
	obs := []int{0, 0, 1, 1, 0, 1, 0, 0}
	alpha, scale, ll := h.Forward(obs)
	if len(alpha) != len(obs) || len(scale) != len(obs) {
		t.Fatalf("bad shapes: %d %d", len(alpha), len(scale))
	}
	for t2, row := range alpha {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha[%d] sums to %v", t2, sum)
		}
	}
	if ll >= 0 {
		t.Errorf("log-likelihood %v, want negative", ll)
	}
}

func TestForwardEmptySequence(t *testing.T) {
	h := twoStateModel()
	alpha, scale, ll := h.Forward(nil)
	if len(alpha) != 0 || len(scale) != 0 || ll != 0 {
		t.Fatalf("empty forward: %v %v %v", alpha, scale, ll)
	}
}

// Brute-force likelihood by enumerating all hidden state paths.
func bruteForceLikelihood(h *Model, obs []int) float64 {
	var rec func(t, state int) float64
	rec = func(t, state int) float64 {
		if t == len(obs) {
			return 1
		}
		var s float64
		for j := 0; j < h.N; j++ {
			s += h.A[state][j] * h.B[j][obs[t]] * rec(t+1, j)
		}
		return s
	}
	var total float64
	for i := 0; i < h.N; i++ {
		total += h.Pi[i] * h.B[i][obs[0]] * rec(1, i)
	}
	return total
}

func TestForwardMatchesBruteForce(t *testing.T) {
	h := twoStateModel()
	for _, obs := range [][]int{{0}, {1, 0}, {0, 1, 1}, {1, 1, 0, 0, 1}} {
		want := math.Log(bruteForceLikelihood(h, obs))
		got := h.LogLikelihood(obs)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("obs %v: logLik = %v, want %v", obs, got, want)
		}
	}
}

func TestBackwardConsistency(t *testing.T) {
	// For every t, sum_i alpha[t][i]*beta[t][i]*scale[t] should be 1
	// under the scaled convention.
	h := twoStateModel()
	obs := []int{0, 1, 1, 0, 0, 1}
	alpha, scale, _ := h.Forward(obs)
	beta := h.Backward(obs, scale)
	for t2 := range obs {
		var s float64
		for i := 0; i < h.N; i++ {
			s += alpha[t2][i] * beta[t2][i]
		}
		s *= scale[t2]
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("t=%d: sum alpha*beta*scale = %v, want 1", t2, s)
		}
	}
}

func TestViterbiRecoversPlantedStates(t *testing.T) {
	h := twoStateModel()
	rng := rand.New(rand.NewSource(7))
	// Plant an unambiguous run: long stretch of 0s then of 1s.
	obs := make([]int, 40)
	for i := 20; i < 40; i++ {
		obs[i] = 1
	}
	_ = rng
	path, lp := h.Viterbi(obs)
	if len(path) != len(obs) {
		t.Fatalf("path length %d", len(path))
	}
	if math.IsInf(lp, 1) || math.IsNaN(lp) {
		t.Fatalf("bad log prob %v", lp)
	}
	if path[5] != 0 || path[35] != 1 {
		t.Errorf("Viterbi failed to track planted regimes: %v", path)
	}
}

func TestViterbiEmpty(t *testing.T) {
	h := twoStateModel()
	path, lp := h.Viterbi(nil)
	if path != nil || lp != 0 {
		t.Fatalf("got %v %v", path, lp)
	}
}

func TestViterbiStatesInRange(t *testing.T) {
	h := NewRandom(4, 5, rand.New(rand.NewSource(3)))
	rng := rand.New(rand.NewSource(4))
	obs := sampleSequence(h, 100, rng)
	path, _ := h.Viterbi(obs)
	for i, s := range path {
		if s < 0 || s >= h.N {
			t.Fatalf("path[%d]=%d out of range", i, s)
		}
	}
}

func TestPredictNextSumsToOne(t *testing.T) {
	h := twoStateModel()
	for _, obs := range [][]int{nil, {0}, {0, 1, 1, 0}} {
		p := h.PredictNext(obs)
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("PredictNext(%v) sums to %v", obs, sum)
		}
	}
}

func TestPredictNextFavorsStickyRegime(t *testing.T) {
	h := twoStateModel()
	// After a long run of symbol 1 we are almost surely in state 1,
	// which is sticky and emits 1 with 0.9.
	obs := []int{1, 1, 1, 1, 1, 1, 1, 1}
	p := h.PredictNext(obs)
	if p[1] <= p[0] {
		t.Errorf("expected symbol 1 to be predicted, got %v", p)
	}
}

func TestBaumWelchIncreasesLikelihood(t *testing.T) {
	truth := twoStateModel()
	rng := rand.New(rand.NewSource(11))
	var seqs [][]int
	for i := 0; i < 20; i++ {
		seqs = append(seqs, sampleSequence(truth, 60, rng))
	}
	h := NewRandom(2, 2, rand.New(rand.NewSource(5)))
	var before float64
	for _, s := range seqs {
		before += h.LogLikelihood(s)
	}
	res, err := h.BaumWelch(seqs, TrainOptions{MaxIter: 30})
	if err != nil {
		t.Fatalf("BaumWelch: %v", err)
	}
	var after float64
	for _, s := range seqs {
		after += h.LogLikelihood(s)
	}
	if after < before {
		t.Errorf("likelihood decreased: %v -> %v", before, after)
	}
	if res.Iterations == 0 {
		t.Errorf("no iterations performed")
	}
	if err := h.Validate(); err != nil {
		t.Errorf("model invalid after training: %v", err)
	}
}

func TestBaumWelchMonotoneLikelihood(t *testing.T) {
	truth := twoStateModel()
	rng := rand.New(rand.NewSource(13))
	var seqs [][]int
	for i := 0; i < 10; i++ {
		seqs = append(seqs, sampleSequence(truth, 40, rng))
	}
	h := NewRandom(2, 2, rand.New(rand.NewSource(17)))
	prev := math.Inf(-1)
	for iter := 0; iter < 10; iter++ {
		if _, err := h.BaumWelch(seqs, TrainOptions{MaxIter: 1, Tolerance: 1e-300}); err != nil {
			t.Fatalf("BaumWelch: %v", err)
		}
		var ll float64
		for _, s := range seqs {
			ll += h.LogLikelihood(s)
		}
		// EM guarantees monotonicity up to the probability flooring;
		// allow a tiny numerical slack.
		if ll < prev-1e-6 {
			t.Fatalf("iteration %d decreased likelihood: %v -> %v", iter, prev, ll)
		}
		prev = ll
	}
}

func TestBaumWelchRecoversEmissionStructure(t *testing.T) {
	truth := twoStateModel()
	rng := rand.New(rand.NewSource(19))
	var seqs [][]int
	for i := 0; i < 50; i++ {
		seqs = append(seqs, sampleSequence(truth, 80, rng))
	}
	h, _, err := Fit(2, 2, seqs, 23, TrainOptions{MaxIter: 60})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Up to label permutation, one state should strongly prefer symbol 0
	// and the other symbol 1.
	s0 := h.B[0][0] > h.B[0][1]
	s1 := h.B[1][0] > h.B[1][1]
	if s0 == s1 {
		t.Errorf("states not separated: B=%v", h.B)
	}
}

func TestBaumWelchErrors(t *testing.T) {
	h := New(2, 2)
	if _, err := h.BaumWelch(nil, TrainOptions{}); err != ErrNoObservations {
		t.Errorf("nil sequences: err=%v, want ErrNoObservations", err)
	}
	if _, err := h.BaumWelch([][]int{{}}, TrainOptions{}); err != ErrNoObservations {
		t.Errorf("empty sequences: err=%v, want ErrNoObservations", err)
	}
	if _, err := h.BaumWelch([][]int{{0, 5}}, TrainOptions{}); err == nil {
		t.Errorf("out-of-range symbol accepted")
	}
	if _, err := h.BaumWelch([][]int{{0, -1}}, TrainOptions{}); err == nil {
		t.Errorf("negative symbol accepted")
	}
}

func TestBaumWelchIgnoresEmptySequences(t *testing.T) {
	h := NewRandom(2, 2, rand.New(rand.NewSource(29)))
	_, err := h.BaumWelch([][]int{{}, {0, 1, 0, 1}, nil}, TrainOptions{MaxIter: 5})
	if err != nil {
		t.Fatalf("BaumWelch with some empty sequences: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := twoStateModel()
	c := h.Clone()
	c.A[0][0] = 0.123
	c.Pi[0] = 0.5
	c.B[1][1] = 0.001
	if h.A[0][0] == 0.123 || h.Pi[0] == 0.5 || h.B[1][1] == 0.001 {
		t.Errorf("Clone shares backing storage with original")
	}
}

func TestValidateRejectsBadModel(t *testing.T) {
	h := twoStateModel()
	h.A[0][0] = 5
	if err := h.Validate(); err == nil {
		t.Errorf("Validate accepted non-stochastic row")
	}
	h = twoStateModel()
	h.B[0][0] = math.NaN()
	if err := h.Validate(); err == nil {
		t.Errorf("Validate accepted NaN")
	}
}

// Property: after Baum-Welch from any seed on any (non-trivial) random
// corpus, all rows remain stochastic and contain no NaNs.
func TestBaumWelchStochasticProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%4) + 1
		m := int(mRaw%5) + 2
		rng := rand.New(rand.NewSource(seed))
		truth := NewRandom(n, m, rng)
		var seqs [][]int
		for i := 0; i < 5; i++ {
			seqs = append(seqs, sampleSequence(truth, 30, rng))
		}
		h := NewRandom(n, m, rng)
		if _, err := h.BaumWelch(seqs, TrainOptions{MaxIter: 5}); err != nil {
			return false
		}
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Viterbi log-prob is never greater than the total log-likelihood
// (the best single path cannot beat the sum over all paths).
func TestViterbiBoundedByLikelihoodProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewRandom(3, 4, rng)
		obs := sampleSequence(h, 25, rng)
		_, vp := h.Viterbi(obs)
		ll := h.LogLikelihood(obs)
		return vp <= ll+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForward(b *testing.B) {
	h := NewRandom(8, 20, rand.New(rand.NewSource(1)))
	obs := sampleSequence(h, 200, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Forward(obs)
	}
}

func BenchmarkViterbi(b *testing.B) {
	h := NewRandom(8, 20, rand.New(rand.NewSource(1)))
	obs := sampleSequence(h, 200, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Viterbi(obs)
	}
}

func BenchmarkBaumWelchIteration(b *testing.B) {
	truth := NewRandom(4, 10, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	var seqs [][]int
	for i := 0; i < 10; i++ {
		seqs = append(seqs, sampleSequence(truth, 100, rng))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewRandom(4, 10, rand.New(rand.NewSource(3)))
		if _, err := h.BaumWelch(seqs, TrainOptions{MaxIter: 1, Tolerance: 1e-300}); err != nil {
			b.Fatal(err)
		}
	}
}
