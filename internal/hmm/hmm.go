// Package hmm implements discrete-observation hidden Markov models with
// scaled forward-backward inference, Baum-Welch parameter estimation and
// Viterbi decoding.
//
// It is the substrate for both layers of the BiHMM model of Zhou et al.
// (ICDE 2019) and for the single-layer HMM baseline in the Fig. 5
// experiment. All probability tables are dense float64 matrices; numerical
// underflow over long sequences is avoided with per-step scaling factors
// (Rabiner-style), so the package is safe for sequences of arbitrary length.
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Model is a discrete HMM with N hidden states and M observation symbols.
//
// Pi[i] is the initial probability of state i, A[i][j] the transition
// probability from state i to state j, and B[i][m] the probability of
// emitting symbol m in state i. All rows are stochastic (sum to 1).
type Model struct {
	N  int         // number of hidden states
	M  int         // number of observation symbols
	Pi []float64   // N
	A  [][]float64 // N x N
	B  [][]float64 // N x M
}

// ErrNoObservations is returned when training is attempted with no usable
// observation sequences.
var ErrNoObservations = errors.New("hmm: no observation sequences")

// New returns a model with uniform parameters.
func New(n, m int) *Model {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("hmm: invalid dimensions n=%d m=%d", n, m))
	}
	h := &Model{N: n, M: m}
	h.Pi = uniformRow(n)
	h.A = make([][]float64, n)
	h.B = make([][]float64, n)
	for i := 0; i < n; i++ {
		h.A[i] = uniformRow(n)
		h.B[i] = uniformRow(m)
	}
	return h
}

// NewRandom returns a model with randomly perturbed stochastic rows drawn
// from rng. Random (rather than uniform) initialisation is required for
// Baum-Welch to break symmetry between states.
func NewRandom(n, m int, rng *rand.Rand) *Model {
	h := New(n, m)
	h.Pi = randomRow(n, rng)
	for i := 0; i < n; i++ {
		h.A[i] = randomRow(n, rng)
		h.B[i] = randomRow(m, rng)
	}
	return h
}

// Clone returns a deep copy of the model.
func (h *Model) Clone() *Model {
	c := &Model{N: h.N, M: h.M}
	c.Pi = append([]float64(nil), h.Pi...)
	c.A = cloneMatrix(h.A)
	c.B = cloneMatrix(h.B)
	return c
}

// Validate checks that the dimensions are consistent and all rows are
// stochastic within tolerance.
func (h *Model) Validate() error {
	if len(h.Pi) != h.N || len(h.A) != h.N || len(h.B) != h.N {
		return fmt.Errorf("hmm: inconsistent dimensions N=%d", h.N)
	}
	if err := checkRow("pi", h.Pi); err != nil {
		return err
	}
	for i := 0; i < h.N; i++ {
		if len(h.A[i]) != h.N {
			return fmt.Errorf("hmm: A row %d has length %d, want %d", i, len(h.A[i]), h.N)
		}
		if len(h.B[i]) != h.M {
			return fmt.Errorf("hmm: B row %d has length %d, want %d", i, len(h.B[i]), h.M)
		}
		if err := checkRow(fmt.Sprintf("A[%d]", i), h.A[i]); err != nil {
			return err
		}
		if err := checkRow(fmt.Sprintf("B[%d]", i), h.B[i]); err != nil {
			return err
		}
	}
	return nil
}

// Forward runs the scaled forward algorithm over obs and returns the scaled
// alpha matrix (T x N), the per-step scaling coefficients and the total
// log-likelihood log P(obs | model).
//
// alpha[t][i] is P(state_t = i | o_1..o_t) after scaling, i.e. each row sums
// to 1 and scale[t] holds the normaliser.
func (h *Model) Forward(obs []int) (alpha [][]float64, scale []float64, logLik float64) {
	T := len(obs)
	alpha = makeMatrix(T, h.N)
	scale = make([]float64, T)
	if T == 0 {
		return alpha, scale, 0
	}
	// Initialisation.
	for i := 0; i < h.N; i++ {
		alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
	}
	scale[0] = normalize(alpha[0])
	// Induction.
	for t := 1; t < T; t++ {
		prev, cur := alpha[t-1], alpha[t]
		for j := 0; j < h.N; j++ {
			var s float64
			for i := 0; i < h.N; i++ {
				s += prev[i] * h.A[i][j]
			}
			cur[j] = s * h.B[j][obs[t]]
		}
		scale[t] = normalize(cur)
	}
	for t := 0; t < T; t++ {
		logLik += math.Log(scale[t])
	}
	return alpha, scale, logLik
}

// Backward runs the scaled backward algorithm using the scaling factors
// produced by Forward over the same observation sequence.
func (h *Model) Backward(obs []int, scale []float64) [][]float64 {
	T := len(obs)
	beta := makeMatrix(T, h.N)
	if T == 0 {
		return beta
	}
	for i := 0; i < h.N; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		for i := 0; i < h.N; i++ {
			var s float64
			for j := 0; j < h.N; j++ {
				s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
			}
			beta[t][i] = s / scale[t]
		}
	}
	return beta
}

// LogLikelihood returns log P(obs | model).
func (h *Model) LogLikelihood(obs []int) float64 {
	_, _, ll := h.Forward(obs)
	return ll
}

// Viterbi returns the most likely hidden state path for obs and its log
// probability. It works in log space and therefore never underflows.
func (h *Model) Viterbi(obs []int) (path []int, logProb float64) {
	T := len(obs)
	if T == 0 {
		return nil, 0
	}
	delta := makeMatrix(T, h.N)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, h.N)
	}
	for i := 0; i < h.N; i++ {
		delta[0][i] = safeLog(h.Pi[i]) + safeLog(h.B[i][obs[0]])
	}
	for t := 1; t < T; t++ {
		for j := 0; j < h.N; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < h.N; i++ {
				v := delta[t-1][i] + safeLog(h.A[i][j])
				if v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + safeLog(h.B[j][obs[t]])
			psi[t][j] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for i := 0; i < h.N; i++ {
		if delta[T-1][i] > best {
			best, arg = delta[T-1][i], i
		}
	}
	path = make([]int, T)
	path[T-1] = arg
	for t := T - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path, best
}

// StateDistribution returns the filtered distribution over hidden states
// after observing obs, i.e. P(state_T = i | o_1..o_T).
func (h *Model) StateDistribution(obs []int) []float64 {
	if len(obs) == 0 {
		return append([]float64(nil), h.Pi...)
	}
	alpha, _, _ := h.Forward(obs)
	return append([]float64(nil), alpha[len(obs)-1]...)
}

// PredictNext returns the predictive distribution over the next observation
// symbol, P(o_{T+1} = m | o_1..o_T). With an empty history it predicts from
// the initial state distribution.
func (h *Model) PredictNext(obs []int) []float64 {
	cur := h.StateDistribution(obs)
	next := make([]float64, h.N)
	if len(obs) == 0 {
		copy(next, cur)
	} else {
		for j := 0; j < h.N; j++ {
			var s float64
			for i := 0; i < h.N; i++ {
				s += cur[i] * h.A[i][j]
			}
			next[j] = s
		}
	}
	out := make([]float64, h.M)
	for m := 0; m < h.M; m++ {
		var s float64
		for j := 0; j < h.N; j++ {
			s += next[j] * h.B[j][m]
		}
		out[m] = s
	}
	return out
}

// TrainResult reports the outcome of a Baum-Welch run.
type TrainResult struct {
	Iterations    int
	LogLikelihood float64 // final total log-likelihood over all sequences
	Converged     bool
}

// TrainOptions controls Baum-Welch.
type TrainOptions struct {
	MaxIter   int     // maximum iterations; default 50
	Tolerance float64 // stop when log-likelihood improves by less; default 1e-4
	// MinProb floors every re-estimated probability to keep the model
	// ergodic (no structurally unreachable state); default 1e-6.
	MinProb float64
	// Restarts is the number of random restarts Fit performs to escape
	// local optima of EM; the model with the best final log-likelihood
	// wins. Default 3. Ignored by BaumWelch itself.
	Restarts int
}

func (o *TrainOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 50
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	if o.MinProb <= 0 {
		o.MinProb = 1e-6
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
}

// BaumWelch re-estimates the model parameters from a set of observation
// sequences using the (scaled, multi-sequence) Baum-Welch algorithm.
// Empty sequences are ignored. The model is updated in place.
func (h *Model) BaumWelch(sequences [][]int, opts TrainOptions) (TrainResult, error) {
	opts.fill()
	var usable [][]int
	for _, s := range sequences {
		if len(s) > 0 {
			usable = append(usable, s)
		}
	}
	if len(usable) == 0 {
		return TrainResult{}, ErrNoObservations
	}
	for _, s := range usable {
		for _, o := range s {
			if o < 0 || o >= h.M {
				return TrainResult{}, fmt.Errorf("hmm: observation %d out of range [0,%d)", o, h.M)
			}
		}
	}

	prevLL := math.Inf(-1)
	res := TrainResult{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		piAcc := make([]float64, h.N)
		aNum := makeMatrix(h.N, h.N)
		aDen := make([]float64, h.N)
		bNum := makeMatrix(h.N, h.M)
		bDen := make([]float64, h.N)
		var totalLL float64

		for _, obs := range usable {
			T := len(obs)
			alpha, scale, ll := h.Forward(obs)
			beta := h.Backward(obs, scale)
			totalLL += ll

			// gamma[t][i] = P(state_t = i | obs); with scaled alpha/beta,
			// gamma ∝ alpha[t][i]*beta[t][i]*scale[t].
			for t := 0; t < T; t++ {
				var norm float64
				g := make([]float64, h.N)
				for i := 0; i < h.N; i++ {
					g[i] = alpha[t][i] * beta[t][i]
					norm += g[i]
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < h.N; i++ {
					g[i] /= norm
					if t == 0 {
						piAcc[i] += g[i]
					}
					bNum[i][obs[t]] += g[i]
					bDen[i] += g[i]
					if t < T-1 {
						aDen[i] += g[i]
					}
				}
			}
			// xi[t][i][j] accumulated directly into aNum.
			for t := 0; t < T-1; t++ {
				var norm float64
				xi := makeMatrix(h.N, h.N)
				for i := 0; i < h.N; i++ {
					for j := 0; j < h.N; j++ {
						v := alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
						xi[i][j] = v
						norm += v
					}
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < h.N; i++ {
					for j := 0; j < h.N; j++ {
						aNum[i][j] += xi[i][j] / norm
					}
				}
			}
		}

		// Re-estimate with flooring, then renormalise.
		for i := 0; i < h.N; i++ {
			h.Pi[i] = piAcc[i]
		}
		floorAndNormalize(h.Pi, opts.MinProb)
		for i := 0; i < h.N; i++ {
			for j := 0; j < h.N; j++ {
				if aDen[i] > 0 {
					h.A[i][j] = aNum[i][j] / aDen[i]
				}
			}
			floorAndNormalize(h.A[i], opts.MinProb)
			for m := 0; m < h.M; m++ {
				if bDen[i] > 0 {
					h.B[i][m] = bNum[i][m] / bDen[i]
				}
			}
			floorAndNormalize(h.B[i], opts.MinProb)
		}

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if iter > 0 && totalLL-prevLL < opts.Tolerance {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}

// Fit creates and trains a model with n states and m symbols on sequences.
// It runs opts.Restarts independent Baum-Welch runs from random
// initialisations derived from seed and returns the run with the highest
// final log-likelihood, which makes the result robust to EM local optima.
func Fit(n, m int, sequences [][]int, seed int64, opts TrainOptions) (*Model, TrainResult, error) {
	opts.fill()
	var (
		best    *Model
		bestRes TrainResult
	)
	for r := 0; r < opts.Restarts; r++ {
		h := NewRandom(n, m, rand.New(rand.NewSource(seed+int64(r)*7919)))
		res, err := h.BaumWelch(sequences, opts)
		if err != nil {
			return nil, TrainResult{}, err
		}
		if best == nil || res.LogLikelihood > bestRes.LogLikelihood {
			best, bestRes = h, res
		}
	}
	return best, bestRes, nil
}

// ---- helpers ----

func uniformRow(n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	return r
}

func randomRow(n int, rng *rand.Rand) []float64 {
	r := make([]float64, n)
	var sum float64
	for i := range r {
		r[i] = 0.5 + rng.Float64() // bounded away from zero
		sum += r[i]
	}
	for i := range r {
		r[i] /= sum
	}
	return r
}

func makeMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

func cloneMatrix(m [][]float64) [][]float64 {
	c := make([][]float64, len(m))
	for i := range m {
		c[i] = append([]float64(nil), m[i]...)
	}
	return c
}

// normalize scales row to sum 1 and returns the original sum. A zero row is
// replaced with a uniform row (sum reported as a tiny epsilon) so scaled
// recursions can continue.
func normalize(row []float64) float64 {
	var sum float64
	for _, v := range row {
		sum += v
	}
	if sum == 0 {
		u := 1 / float64(len(row))
		for i := range row {
			row[i] = u
		}
		return 1e-300
	}
	for i := range row {
		row[i] /= sum
	}
	return sum
}

func floorAndNormalize(row []float64, floor float64) {
	var sum float64
	for i := range row {
		if row[i] < floor {
			row[i] = floor
		}
		sum += row[i]
	}
	for i := range row {
		row[i] /= sum
	}
}

func checkRow(name string, row []float64) error {
	var sum float64
	for _, v := range row {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("hmm: %s contains invalid probability %v", name, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("hmm: %s sums to %v, want 1", name, sum)
	}
	return nil
}

func safeLog(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return math.Log(v)
}
