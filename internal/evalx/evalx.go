// Package evalx is the stream-simulation evaluation harness of the paper's
// §VI-B: interactions are ordered by timestamp and split into six equal
// partitions; the first two train, the remaining four test. Each test
// partition is replayed in order — when an item first appears the system
// recommends its top-k users (P@k hit = a recommended user really
// interacts with that item within the partition), after which the
// interaction feeds the system's streaming update path.
//
// The same harness measures the per-item recommendation latency (Fig. 10)
// and the update cost (Fig. 11).
package evalx

import (
	"fmt"
	"time"

	"ssrec/internal/baseline"
	"ssrec/internal/dataset"
	"ssrec/internal/metrics"
	"ssrec/internal/model"
)

// Setup fixes the partitioning scheme. Zero values take the paper's
// defaults (6 partitions, first 2 train).
type Setup struct {
	Partitions int
	TrainParts int
	// MaxItemsPerPartition caps the number of distinct items evaluated per
	// test partition (0 = all) — a throttle for quick benchmark runs.
	MaxItemsPerPartition int
}

func (s *Setup) fill() {
	if s.Partitions <= 0 {
		s.Partitions = 6
	}
	if s.TrainParts <= 0 {
		s.TrainParts = 2
	}
	if s.TrainParts >= s.Partitions {
		s.TrainParts = s.Partitions - 1
	}
}

// BatchTrainer is implemented by systems (the ssRec engine) that bootstrap
// from the training partitions in one call instead of replaying Observe.
type BatchTrainer interface {
	Train(items []model.Item, interactions []model.Interaction, resolve func(string) (model.Item, bool)) error
}

// neighbourRefresher lets UCD rebuild its neighbour lists after training.
type neighbourRefresher interface {
	RefreshNeighbours()
}

// Result aggregates one evaluation run.
type Result struct {
	System string
	// PAtK maps cutoff k to precision over all test partitions.
	PAtK map[int]float64
	// Hits / ItemsTested decompose the precision.
	Hits        map[int]int
	ItemsTested int
	// RecommendLatency is the average per-item recommendation time.
	RecommendLatency time.Duration
	// UpdateLatency is the average per-interaction Observe time.
	UpdateLatency time.Duration
	// RecommendHist carries the full latency distribution (p50/p95/p99).
	RecommendHist metrics.Snapshot
	// PerPartition carries per-test-partition cumulative metrics
	// (partition i = prefix of i+1 test partitions), matching Fig. 10's
	// x-axis "number of partitions".
	PerPartition []PartitionMetrics
}

// PartitionMetrics is the cumulative view after each test partition.
type PartitionMetrics struct {
	Partition        int
	ItemsTested      int
	RecommendLatency time.Duration // cumulative average per item
	UpdateLatency    time.Duration // cumulative average per interaction
	UpdateTotal      time.Duration // total update time so far (Fig. 11)
}

// Train bootstraps a recommender on the training partitions: BatchTrainer
// systems get the one-shot path, others an Observe replay.
func Train(rec baseline.Recommender, ds *dataset.Dataset, setup Setup) error {
	setup.fill()
	parts := ds.Partition(setup.Partitions)
	var train []model.Interaction
	for i := 0; i < setup.TrainParts; i++ {
		train = append(train, parts[i]...)
	}
	if bt, ok := rec.(BatchTrainer); ok {
		if err := bt.Train(ds.Items, train, ds.Item); err != nil {
			return fmt.Errorf("evalx: train %s: %w", rec.Name(), err)
		}
	} else {
		for _, ir := range train {
			if v, ok := ds.Item(ir.ItemID); ok {
				rec.Observe(ir, v)
			}
		}
	}
	if nr, ok := rec.(neighbourRefresher); ok {
		nr.RefreshNeighbours()
	}
	return nil
}

// Run trains rec and replays the test partitions, measuring P@k for every
// cutoff in ks plus latencies. The recommender must be freshly constructed.
func Run(rec baseline.Recommender, ds *dataset.Dataset, setup Setup, ks []int) (Result, error) {
	setup.fill()
	if err := Train(rec, ds, setup); err != nil {
		return Result{}, err
	}
	return RunTest(rec, ds, setup, ks)
}

// RunTest replays only the test partitions against an already-trained
// recommender.
func RunTest(rec baseline.Recommender, ds *dataset.Dataset, setup Setup, ks []int) (Result, error) {
	setup.fill()
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	if maxK == 0 {
		return Result{}, fmt.Errorf("evalx: no cutoffs")
	}
	res := Result{
		System: rec.Name(),
		PAtK:   make(map[int]float64, len(ks)),
		Hits:   make(map[int]int, len(ks)),
	}
	parts := ds.Partition(setup.Partitions)
	var recTotal, updTotal time.Duration
	var nInteractions int
	var recHist metrics.Histogram

	for pi := setup.TrainParts; pi < setup.Partitions; pi++ {
		part := parts[pi]
		// Ground truth: users interacting with each item in this partition.
		truth := map[string]map[string]bool{}
		for _, ir := range part {
			m := truth[ir.ItemID]
			if m == nil {
				m = map[string]bool{}
				truth[ir.ItemID] = m
			}
			m[ir.UserID] = true
		}
		seen := map[string]bool{}
		itemsThisPart := 0
		for _, ir := range part {
			v, ok := ds.Item(ir.ItemID)
			if !ok {
				continue
			}
			if !seen[ir.ItemID] &&
				(setup.MaxItemsPerPartition == 0 || itemsThisPart < setup.MaxItemsPerPartition) {
				seen[ir.ItemID] = true
				itemsThisPart++
				start := time.Now()
				recs := rec.Recommend(v, maxK)
				took := time.Since(start)
				recTotal += took
				recHist.Record(took)
				res.ItemsTested++
				gt := truth[ir.ItemID]
				for _, k := range ks {
					top := recs
					if len(top) > k {
						top = top[:k]
					}
					for _, r := range top {
						if gt[r.UserID] {
							res.Hits[k]++
						}
					}
				}
			}
			start := time.Now()
			rec.Observe(ir, v)
			updTotal += time.Since(start)
			nInteractions++
		}
		pm := PartitionMetrics{Partition: pi - setup.TrainParts + 1, ItemsTested: res.ItemsTested, UpdateTotal: updTotal}
		if res.ItemsTested > 0 {
			pm.RecommendLatency = recTotal / time.Duration(res.ItemsTested)
		}
		if nInteractions > 0 {
			pm.UpdateLatency = updTotal / time.Duration(nInteractions)
		}
		res.PerPartition = append(res.PerPartition, pm)
	}
	for _, k := range ks {
		if res.ItemsTested > 0 {
			res.PAtK[k] = float64(res.Hits[k]) / float64(res.ItemsTested*k)
		}
	}
	if res.ItemsTested > 0 {
		res.RecommendLatency = recTotal / time.Duration(res.ItemsTested)
	}
	if nInteractions > 0 {
		res.UpdateLatency = updTotal / time.Duration(nInteractions)
	}
	res.RecommendHist = recHist.Snapshot()
	return res, nil
}

// Accuracy is the Fig. 5 metric: fraction of correct next-category
// predictions. Exposed here for symmetric reporting.
type Accuracy struct {
	States int
	Users  int
	HMM    float64
	BiHMM  float64
}

func (a Accuracy) String() string {
	return fmt.Sprintf("states=%d users=%d HMM=%.3f BiHMM=%.3f", a.States, a.Users, a.HMM, a.BiHMM)
}
