package evalx

import (
	"testing"

	"ssrec/internal/baseline"
	"ssrec/internal/dataset"
	"ssrec/internal/model"
)

func tinyDS(t testing.TB) *dataset.Dataset {
	t.Helper()
	cfg := dataset.YTubeConfig(0.2)
	cfg.Seed = 77
	return dataset.Generate(cfg)
}

// oracle recommends exactly the future interactors (cheating reference —
// calibrates the harness: its P@k must be high).
type oracle struct {
	truth map[string][]string // itemID -> future users
}

func (o *oracle) Name() string                               { return "oracle" }
func (o *oracle) Observe(ir model.Interaction, v model.Item) {}
func (o *oracle) Recommend(v model.Item, k int) []model.Recommendation {
	var out []model.Recommendation
	for i, u := range o.truth[v.ID] {
		if i >= k {
			break
		}
		out = append(out, model.Recommendation{UserID: u, Score: 1 - float64(i)/100})
	}
	return out
}

// antiOracle recommends users that never interact.
type antiOracle struct{}

func (antiOracle) Name() string                               { return "anti" }
func (antiOracle) Observe(ir model.Interaction, v model.Item) {}
func (antiOracle) Recommend(v model.Item, k int) []model.Recommendation {
	out := make([]model.Recommendation, k)
	for i := range out {
		out[i] = model.Recommendation{UserID: "nobody", Score: 0}
	}
	return out
}

func buildOracle(ds *dataset.Dataset, setup Setup) *oracle {
	parts := ds.Partition(setup.Partitions)
	o := &oracle{truth: map[string][]string{}}
	for pi := setup.TrainParts; pi < setup.Partitions; pi++ {
		seen := map[string]map[string]bool{}
		for _, ir := range parts[pi] {
			m := seen[ir.ItemID]
			if m == nil {
				m = map[string]bool{}
				seen[ir.ItemID] = m
			}
			if !m[ir.UserID] {
				m[ir.UserID] = true
				o.truth[ir.ItemID] = append(o.truth[ir.ItemID], ir.UserID)
			}
		}
	}
	return o
}

func TestOracleScoresHigh(t *testing.T) {
	ds := tinyDS(t)
	setup := Setup{}
	o := buildOracle(ds, Setup{Partitions: 6, TrainParts: 2})
	res, err := Run(o, ds, setup, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PAtK[5] < 0.2 {
		t.Errorf("oracle P@5 = %.3f — harness not crediting true hits", res.PAtK[5])
	}
	if res.ItemsTested == 0 {
		t.Fatal("no items tested")
	}
}

func TestAntiOracleScoresZero(t *testing.T) {
	ds := tinyDS(t)
	res, err := Run(antiOracle{}, ds, Setup{}, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.PAtK[5] != 0 || res.PAtK[10] != 0 {
		t.Errorf("anti-oracle scored: %v", res.PAtK)
	}
}

func TestRunWithCTTEndToEnd(t *testing.T) {
	ds := tinyDS(t)
	res, err := Run(baseline.NewCTT(baseline.CTTConfig{}), ds, Setup{}, []int{5, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "CTT" {
		t.Errorf("System = %s", res.System)
	}
	for _, k := range []int{5, 10, 20, 30} {
		p := res.PAtK[k]
		if p < 0 || p > 1 {
			t.Errorf("P@%d = %v out of range", k, p)
		}
	}
	if res.RecommendLatency <= 0 {
		t.Errorf("latency not measured")
	}
	if res.RecommendHist.Count == 0 || res.RecommendHist.P99 < res.RecommendHist.P50 {
		t.Errorf("latency histogram wrong: %v", res.RecommendHist)
	}
	if len(res.PerPartition) != 4 {
		t.Errorf("per-partition metrics: %d, want 4", len(res.PerPartition))
	}
	// Cumulative update totals must be non-decreasing.
	for i := 1; i < len(res.PerPartition); i++ {
		if res.PerPartition[i].UpdateTotal < res.PerPartition[i-1].UpdateTotal {
			t.Errorf("update totals decreased at partition %d", i)
		}
	}
}

func TestCTTBeatsAntiOracle(t *testing.T) {
	ds := tinyDS(t)
	ctt, err := Run(baseline.NewCTT(baseline.CTTConfig{}), ds, Setup{}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	anti, err := Run(antiOracle{}, ds, Setup{}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if ctt.PAtK[10] <= anti.PAtK[10] {
		t.Errorf("CTT (%.4f) not above random-garbage baseline (%.4f)", ctt.PAtK[10], anti.PAtK[10])
	}
}

func TestMaxItemsThrottle(t *testing.T) {
	ds := tinyDS(t)
	full, err := Run(baseline.NewCTT(baseline.CTTConfig{}), ds, Setup{}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Run(baseline.NewCTT(baseline.CTTConfig{}), ds, Setup{MaxItemsPerPartition: 3}, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if capped.ItemsTested >= full.ItemsTested {
		t.Errorf("throttle inert: %d vs %d", capped.ItemsTested, full.ItemsTested)
	}
	if capped.ItemsTested > 3*4 {
		t.Errorf("throttle exceeded: %d items", capped.ItemsTested)
	}
}

func TestRunNoCutoffs(t *testing.T) {
	ds := tinyDS(t)
	if _, err := Run(antiOracle{}, ds, Setup{}, nil); err == nil {
		t.Fatal("accepted empty cutoffs")
	}
}

func TestSetupDefaults(t *testing.T) {
	s := Setup{}
	s.fill()
	if s.Partitions != 6 || s.TrainParts != 2 {
		t.Errorf("defaults = %+v", s)
	}
	s2 := Setup{Partitions: 3, TrainParts: 9}
	s2.fill()
	if s2.TrainParts >= s2.Partitions {
		t.Errorf("TrainParts not clamped: %+v", s2)
	}
}
