package bihmm

import (
	"sort"

	"ssrec/internal/hmm"
)

// ProducerLayer is the a-HMM layer: one classic HMM per producer over the
// categories of the items it creates, plus the Viterbi-decoded hidden state
// of every created item — the Z values that condition the consumer layer.
type ProducerLayer struct {
	NZ         int // hidden states per producer model
	M          int // categories
	MinHistory int // producers with fewer items share the unknown bucket

	models    map[string]*hmm.Model
	histories map[string][]int // item category sequence per producer
	states    map[string][]int // decoded state per item position
}

// ProducerLayerOptions configures FitProducerLayer.
type ProducerLayerOptions struct {
	NZ         int   // hidden states per producer (default 3)
	MinHistory int   // minimum items to train a model (default 5)
	Seed       int64 // training seed
	Train      hmm.TrainOptions
}

func (o *ProducerLayerOptions) fill() {
	if o.NZ <= 0 {
		o.NZ = 3
	}
	if o.MinHistory <= 0 {
		o.MinHistory = 5
	}
}

// FitProducerLayer trains an a-HMM for every producer whose item-category
// history has at least MinHistory entries and Viterbi-decodes the hidden
// state of each created item. histories maps producer ID to the category
// indices of its items in creation order.
func FitProducerLayer(histories map[string][]int, mcats int, opts ProducerLayerOptions) *ProducerLayer {
	opts.fill()
	pl := &ProducerLayer{
		NZ:         opts.NZ,
		M:          mcats,
		MinHistory: opts.MinHistory,
		models:     make(map[string]*hmm.Model),
		histories:  make(map[string][]int, len(histories)),
		states:     make(map[string][]int),
	}
	// Deterministic iteration order for reproducible seeds.
	ids := make([]string, 0, len(histories))
	for id := range histories {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for k, id := range ids {
		seq := histories[id]
		pl.histories[id] = append([]int(nil), seq...)
		if len(seq) < opts.MinHistory {
			continue
		}
		m, _, err := hmm.Fit(opts.NZ, mcats, [][]int{seq}, opts.Seed+int64(k), opts.Train)
		if err != nil {
			continue
		}
		pl.models[id] = m
		path, _ := m.Viterbi(seq)
		pl.states[id] = path
	}
	return pl
}

// Model returns the a-HMM of a producer, or nil if untrained.
func (pl *ProducerLayer) Model(producer string) *hmm.Model { return pl.models[producer] }

// TrainedProducers returns the number of producers with trained models.
func (pl *ProducerLayer) TrainedProducers() int { return len(pl.models) }

// StateAt returns the decoded hidden state of the producer's pos-th item,
// or ZUnknown when the producer is untrained or pos is out of range.
func (pl *ProducerLayer) StateAt(producer string, pos int) int {
	st := pl.states[producer]
	if pos < 0 || pos >= len(st) {
		return ZUnknown
	}
	return st[pos]
}

// AlignedStateAt returns the producer's decoded state at pos labelled by
// its dominant emission category (the argmax of the state's B row), or
// ZUnknown.
//
// Raw state indices are producer-relative — state 1 of producer A and
// state 1 of producer B describe unrelated regimes — so pooling them in
// the consumer layer's shared conditional matrices washes the dependency
// out. Labelling each state by the category it predominantly emits gives
// the conditioning variable Z a globally consistent meaning while staying
// a pure function of the a-HMM, and is what makes the Fig. 5 BiHMM
// advantage reproducible (see DESIGN.md, implementation refinements).
// The aligned alphabet size is the category count M.
func (pl *ProducerLayer) AlignedStateAt(producer string, pos int) int {
	z := pl.StateAt(producer, pos)
	if z == ZUnknown {
		return ZUnknown
	}
	return pl.dominantCategory(producer, z)
}

// AlignedCurrentZ is CurrentZ in the aligned (dominant-category) alphabet.
func (pl *ProducerLayer) AlignedCurrentZ(producer string) int {
	z := pl.CurrentZ(producer)
	if z == ZUnknown {
		return ZUnknown
	}
	return pl.dominantCategory(producer, z)
}

func (pl *ProducerLayer) dominantCategory(producer string, state int) int {
	m := pl.models[producer]
	if m == nil || state < 0 || state >= m.N {
		return ZUnknown
	}
	best, arg := -1.0, 0
	for c, p := range m.B[state] {
		if p > best {
			best, arg = p, c
		}
	}
	return arg
}

// CurrentZ predicts the producer's hidden state for its next item: the most
// likely transition target from the last decoded state. Returns ZUnknown
// for untrained producers.
func (pl *ProducerLayer) CurrentZ(producer string) int {
	m := pl.models[producer]
	st := pl.states[producer]
	if m == nil || len(st) == 0 {
		return ZUnknown
	}
	last := st[len(st)-1]
	best, arg := -1.0, 0
	for j, p := range m.A[last] {
		if p > best {
			best, arg = p, j
		}
	}
	return arg
}

// ObserveItem appends a newly created item (category index) to a producer's
// history and extends its decoded state sequence incrementally (greedy
// one-step extension: argmax_j A[last][j]·B[j][cat]). Untrained producers
// accumulate history only; once they reach MinHistory the caller may refit
// via Refit.
func (pl *ProducerLayer) ObserveItem(producer string, cat int) {
	pl.histories[producer] = append(pl.histories[producer], cat)
	m := pl.models[producer]
	if m == nil {
		return
	}
	st := pl.states[producer]
	if len(st) == 0 {
		best, arg := -1.0, 0
		for j := 0; j < m.N; j++ {
			if v := m.Pi[j] * m.B[j][cat]; v > best {
				best, arg = v, j
			}
		}
		pl.states[producer] = append(st, arg)
		return
	}
	last := st[len(st)-1]
	best, arg := -1.0, 0
	for j := 0; j < m.N; j++ {
		if v := m.A[last][j] * m.B[j][cat]; v > best {
			best, arg = v, j
		}
	}
	pl.states[producer] = append(st, arg)
}

// Refit retrains the producer's model on its accumulated history (used by
// periodic maintenance). Returns false if the history is still too short.
func (pl *ProducerLayer) Refit(producer string, seed int64, train hmm.TrainOptions) bool {
	seq := pl.histories[producer]
	if len(seq) < pl.MinHistory {
		return false
	}
	m, _, err := hmm.Fit(pl.NZ, pl.M, [][]int{seq}, seed, train)
	if err != nil {
		return false
	}
	pl.models[producer] = m
	path, _ := m.Viterbi(seq)
	pl.states[producer] = path
	return true
}

// LayerSnapshot is the exported wire form of a ProducerLayer.
type LayerSnapshot struct {
	NZ         int
	M          int
	MinHistory int
	Models     map[string]*hmm.Model
	Histories  map[string][]int
	States     map[string][]int
}

// Snapshot exports the layer (models are shared, not copied — callers must
// not mutate them after snapshotting).
func (pl *ProducerLayer) Snapshot() LayerSnapshot {
	s := LayerSnapshot{
		NZ: pl.NZ, M: pl.M, MinHistory: pl.MinHistory,
		Models:    make(map[string]*hmm.Model, len(pl.models)),
		Histories: make(map[string][]int, len(pl.histories)),
		States:    make(map[string][]int, len(pl.states)),
	}
	for k, v := range pl.models {
		s.Models[k] = v.Clone()
	}
	for k, v := range pl.histories {
		s.Histories[k] = append([]int(nil), v...)
	}
	for k, v := range pl.states {
		s.States[k] = append([]int(nil), v...)
	}
	return s
}

// LayerFromSnapshot rebuilds a ProducerLayer.
func LayerFromSnapshot(s LayerSnapshot) *ProducerLayer {
	pl := &ProducerLayer{
		NZ: s.NZ, M: s.M, MinHistory: s.MinHistory,
		models:    make(map[string]*hmm.Model, len(s.Models)),
		histories: make(map[string][]int, len(s.Histories)),
		states:    make(map[string][]int, len(s.States)),
	}
	for k, v := range s.Models {
		pl.models[k] = v.Clone()
	}
	for k, v := range s.Histories {
		pl.histories[k] = append([]int(nil), v...)
	}
	for k, v := range s.States {
		pl.states[k] = append([]int(nil), v...)
	}
	return pl
}

// SelectConsumerStates mirrors hmm.SelectStates for the conditioned
// consumer model: it picks the consumer hidden-state count 1..maxStates
// with the best next-category accuracy on the last 20% of the observation
// sequence, returning the count, the model and the accuracy.
func SelectConsumerStates(seq []Obs, maxStates, nz, mcats int, seed int64, opts TrainOptions) (int, *BHMM, float64) {
	if maxStates < 1 {
		maxStates = 1
	}
	split := len(seq) * 8 / 10
	if split < 2 {
		split = len(seq) - 1
	}
	if split < 1 {
		b, _, _ := Fit(1, nz, mcats, [][]Obs{seq}, seed, opts)
		return 1, b, 0
	}
	train := [][]Obs{seq[:split]}
	bestN, bestAcc := 1, -1.0
	var bestModel *BHMM
	for n := 1; n <= maxStates; n++ {
		b, _, err := Fit(n, nz, mcats, train, seed+int64(n), opts)
		if err != nil {
			continue
		}
		acc := EvaluateNextPrediction(b, seq, split)
		if acc > bestAcc {
			bestN, bestAcc, bestModel = n, acc, b
		}
	}
	return bestN, bestModel, bestAcc
}

// EvaluateNextPrediction measures next-category accuracy of a trained BHMM
// over the suffix starting at start, conditioning each prediction on the
// true producer state of the next item (which is known at recommendation
// time — the incoming item carries its producer).
func EvaluateNextPrediction(m *BHMM, seq []Obs, start int) float64 {
	if start < 1 {
		start = 1
	}
	if start >= len(seq) {
		return 0
	}
	hits := 0
	for t := start; t < len(seq); t++ {
		p := m.PredictNextGivenZ(seq[:t], seq[t].Z)
		if argmax(p) == seq[t].Cat {
			hits++
		}
	}
	return float64(hits) / float64(len(seq)-start)
}

func argmax(p []float64) int {
	best, arg := p[0], 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}
