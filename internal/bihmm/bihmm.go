// Package bihmm implements the Bi-Layer Hidden Markov Model of Zhou et al.
// (ICDE 2019, §IV-A).
//
// The model has two layers:
//
//   - The a-HMM layer models each producer's item-creation process with a
//     classic HMM over item categories (package hmm). Viterbi decoding
//     assigns every created item a producer hidden state Z.
//   - The b-HMM layer models a consumer conditioned on the producer layer:
//     its transition and emission probabilities depend on the producer
//     hidden state of the browsed item, a(b)ikj = p(Uj | Ui, Zk) and
//     b(b)jkm = p(cm | Uj, Zk). Following the paper's reformulation, the
//     dependency is handled by treating the Z sequence as observed side
//     information, which yields a conditioned Baum-Welch with per-Z
//     parameter matrices.
//
// Prediction: for an incoming item from producer up, the producer's a-HMM
// supplies the current Z, and the consumer's b-HMM forward pass gives
// p(c | consumer history, Z) — the category probability used by the
// item–user ranking (Eq. 1).
package bihmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ssrec/internal/hmm"
)

// ZUnknown is the reserved producer-state value used when the producer of
// an item is unknown or has too little history to train an a-HMM. It is a
// real conditioning value with its own parameter slices, so the model
// degrades gracefully to a single-layer HMM for such items.
const ZUnknown = -1

// Obs is one conditioned observation of a consumer: the browsed item's
// category index and the producer hidden state of that item (ZUnknown
// allowed).
type Obs struct {
	Cat int
	Z   int
}

// BHMM is the consumer-layer model: NU consumer hidden states, NZ producer
// states (plus the unknown bucket) and M observation categories.
//
// A[z][i][j] = p(U_j | U_i, Z=z); B[z][j][m] = p(c_m | U_j, Z=z).
// Index z = NZ is the unknown-producer bucket.
type BHMM struct {
	NU int
	NZ int // producer states, excluding the unknown bucket
	M  int
	Pi []float64
	A  [][][]float64 // (NZ+1) x NU x NU
	B  [][][]float64 // (NZ+1) x NU x M
}

// ErrNoObservations mirrors hmm.ErrNoObservations for the conditioned
// trainer.
var ErrNoObservations = errors.New("bihmm: no observation sequences")

// zSlot maps a producer state (or ZUnknown) to the parameter slice index.
func (m *BHMM) zSlot(z int) int {
	if z == ZUnknown || z < 0 || z >= m.NZ {
		return m.NZ
	}
	return z
}

// NewRandom creates a randomly initialised BHMM.
func NewRandom(nu, nz, mcats int, rng *rand.Rand) *BHMM {
	if nu <= 0 || nz < 0 || mcats <= 0 {
		panic(fmt.Sprintf("bihmm: invalid dims nu=%d nz=%d m=%d", nu, nz, mcats))
	}
	b := &BHMM{NU: nu, NZ: nz, M: mcats}
	b.Pi = randomRow(nu, rng)
	b.A = make([][][]float64, nz+1)
	b.B = make([][][]float64, nz+1)
	for z := 0; z <= nz; z++ {
		b.A[z] = make([][]float64, nu)
		b.B[z] = make([][]float64, nu)
		for i := 0; i < nu; i++ {
			b.A[z][i] = randomRow(nu, rng)
			b.B[z][i] = randomRow(mcats, rng)
		}
	}
	return b
}

// Validate checks stochasticity of every row.
func (m *BHMM) Validate() error {
	if err := checkRow("pi", m.Pi); err != nil {
		return err
	}
	for z := range m.A {
		for i := range m.A[z] {
			if err := checkRow(fmt.Sprintf("A[%d][%d]", z, i), m.A[z][i]); err != nil {
				return err
			}
			if err := checkRow(fmt.Sprintf("B[%d][%d]", z, i), m.B[z][i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Forward runs the Z-conditioned scaled forward pass and returns the scaled
// alpha matrix, scaling factors and total log-likelihood.
func (m *BHMM) Forward(obs []Obs) (alpha [][]float64, scale []float64, logLik float64) {
	T := len(obs)
	alpha = makeMatrix(T, m.NU)
	scale = make([]float64, T)
	if T == 0 {
		return alpha, scale, 0
	}
	z0 := m.zSlot(obs[0].Z)
	for i := 0; i < m.NU; i++ {
		alpha[0][i] = m.Pi[i] * m.B[z0][i][obs[0].Cat]
	}
	scale[0] = normalize(alpha[0])
	for t := 1; t < T; t++ {
		zt := m.zSlot(obs[t].Z)
		prev, cur := alpha[t-1], alpha[t]
		for j := 0; j < m.NU; j++ {
			var s float64
			for i := 0; i < m.NU; i++ {
				s += prev[i] * m.A[zt][i][j]
			}
			cur[j] = s * m.B[zt][j][obs[t].Cat]
		}
		scale[t] = normalize(cur)
	}
	for t := 0; t < T; t++ {
		logLik += math.Log(scale[t])
	}
	return alpha, scale, logLik
}

// Backward runs the conditioned scaled backward pass.
func (m *BHMM) Backward(obs []Obs, scale []float64) [][]float64 {
	T := len(obs)
	beta := makeMatrix(T, m.NU)
	if T == 0 {
		return beta
	}
	for i := 0; i < m.NU; i++ {
		beta[T-1][i] = 1 / scale[T-1]
	}
	for t := T - 2; t >= 0; t-- {
		zt1 := m.zSlot(obs[t+1].Z)
		for i := 0; i < m.NU; i++ {
			var s float64
			for j := 0; j < m.NU; j++ {
				s += m.A[zt1][i][j] * m.B[zt1][j][obs[t+1].Cat] * beta[t+1][j]
			}
			beta[t][i] = s / scale[t]
		}
	}
	return beta
}

// LogLikelihood returns log P(obs | model).
func (m *BHMM) LogLikelihood(obs []Obs) float64 {
	_, _, ll := m.Forward(obs)
	return ll
}

// StateDistribution returns the filtered consumer-state distribution after
// the history.
func (m *BHMM) StateDistribution(obs []Obs) []float64 {
	if len(obs) == 0 {
		return append([]float64(nil), m.Pi...)
	}
	alpha, _, _ := m.Forward(obs)
	return append([]float64(nil), alpha[len(obs)-1]...)
}

// PredictNextGivenZ returns p(c | history, next item's producer state z)
// over all M categories — the BiHMM output plugged into the ranking
// function for a concrete incoming item.
func (m *BHMM) PredictNextGivenZ(obs []Obs, z int) []float64 {
	cur := m.StateDistribution(obs)
	zs := m.zSlot(z)
	next := make([]float64, m.NU)
	if len(obs) == 0 {
		copy(next, cur)
	} else {
		for j := 0; j < m.NU; j++ {
			var s float64
			for i := 0; i < m.NU; i++ {
				s += cur[i] * m.A[zs][i][j]
			}
			next[j] = s
		}
	}
	out := make([]float64, m.M)
	for c := 0; c < m.M; c++ {
		var s float64
		for j := 0; j < m.NU; j++ {
			s += next[j] * m.B[zs][j][c]
		}
		out[c] = s
	}
	return out
}

// PredictNextMarginal returns p(c | history) with the producer state
// marginalised under zDist (length NZ+1, last element = unknown bucket).
// A nil zDist uses a uniform distribution.
func (m *BHMM) PredictNextMarginal(obs []Obs, zDist []float64) []float64 {
	if zDist == nil {
		zDist = make([]float64, m.NZ+1)
		for i := range zDist {
			zDist[i] = 1 / float64(m.NZ+1)
		}
	}
	out := make([]float64, m.M)
	for z := 0; z <= m.NZ; z++ {
		if zDist[z] == 0 {
			continue
		}
		p := m.PredictNextGivenZ(obs, zForSlot(z, m.NZ))
		for c := range out {
			out[c] += zDist[z] * p[c]
		}
	}
	return out
}

func zForSlot(slot, nz int) int {
	if slot >= nz {
		return ZUnknown
	}
	return slot
}

// TrainOptions mirrors hmm.TrainOptions.
type TrainOptions struct {
	MaxIter   int
	Tolerance float64
	MinProb   float64
	Restarts  int
}

func (o *TrainOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	if o.MinProb <= 0 {
		o.MinProb = 1e-6
	}
	if o.Restarts <= 0 {
		o.Restarts = 2
	}
}

// BaumWelch runs the Z-conditioned Baum-Welch over the observation
// sequences, updating the model in place.
func (m *BHMM) BaumWelch(sequences [][]Obs, opts TrainOptions) (hmm.TrainResult, error) {
	opts.fill()
	var usable [][]Obs
	for _, s := range sequences {
		if len(s) > 0 {
			usable = append(usable, s)
		}
	}
	if len(usable) == 0 {
		return hmm.TrainResult{}, ErrNoObservations
	}
	for _, s := range usable {
		for _, o := range s {
			if o.Cat < 0 || o.Cat >= m.M {
				return hmm.TrainResult{}, fmt.Errorf("bihmm: category %d out of range [0,%d)", o.Cat, m.M)
			}
		}
	}

	nz1 := m.NZ + 1
	prevLL := math.Inf(-1)
	res := hmm.TrainResult{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		piAcc := make([]float64, m.NU)
		aNum := makeCube(nz1, m.NU, m.NU)
		aDen := makeMatrix(nz1, m.NU)
		bNum := makeCube(nz1, m.NU, m.M)
		bDen := makeMatrix(nz1, m.NU)
		var totalLL float64

		for _, obs := range usable {
			T := len(obs)
			alpha, scale, ll := m.Forward(obs)
			beta := m.Backward(obs, scale)
			totalLL += ll

			for t := 0; t < T; t++ {
				zt := m.zSlot(obs[t].Z)
				var norm float64
				g := make([]float64, m.NU)
				for i := 0; i < m.NU; i++ {
					g[i] = alpha[t][i] * beta[t][i]
					norm += g[i]
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < m.NU; i++ {
					g[i] /= norm
					if t == 0 {
						piAcc[i] += g[i]
					}
					bNum[zt][i][obs[t].Cat] += g[i]
					bDen[zt][i] += g[i]
				}
			}
			for t := 0; t < T-1; t++ {
				zt1 := m.zSlot(obs[t+1].Z)
				var norm float64
				xi := makeMatrix(m.NU, m.NU)
				for i := 0; i < m.NU; i++ {
					for j := 0; j < m.NU; j++ {
						v := alpha[t][i] * m.A[zt1][i][j] * m.B[zt1][j][obs[t+1].Cat] * beta[t+1][j]
						xi[i][j] = v
						norm += v
					}
				}
				if norm == 0 {
					continue
				}
				for i := 0; i < m.NU; i++ {
					var rowSum float64
					for j := 0; j < m.NU; j++ {
						xi[i][j] /= norm
						aNum[zt1][i][j] += xi[i][j]
						rowSum += xi[i][j]
					}
					aDen[zt1][i] += rowSum
				}
			}
		}

		for i := 0; i < m.NU; i++ {
			m.Pi[i] = piAcc[i]
		}
		floorAndNormalize(m.Pi, opts.MinProb)
		for z := 0; z < nz1; z++ {
			for i := 0; i < m.NU; i++ {
				if aDen[z][i] > 0 {
					for j := 0; j < m.NU; j++ {
						m.A[z][i][j] = aNum[z][i][j] / aDen[z][i]
					}
				}
				floorAndNormalize(m.A[z][i], opts.MinProb)
				if bDen[z][i] > 0 {
					for c := 0; c < m.M; c++ {
						m.B[z][i][c] = bNum[z][i][c] / bDen[z][i]
					}
				}
				floorAndNormalize(m.B[z][i], opts.MinProb)
			}
		}

		res.Iterations = iter + 1
		res.LogLikelihood = totalLL
		if iter > 0 && totalLL-prevLL < opts.Tolerance {
			res.Converged = true
			break
		}
		prevLL = totalLL
	}
	return res, nil
}

// Fit trains a BHMM with random restarts, keeping the best run.
func Fit(nu, nz, mcats int, sequences [][]Obs, seed int64, opts TrainOptions) (*BHMM, hmm.TrainResult, error) {
	opts.fill()
	var (
		best    *BHMM
		bestRes hmm.TrainResult
	)
	for r := 0; r < opts.Restarts; r++ {
		b := NewRandom(nu, nz, mcats, rand.New(rand.NewSource(seed+int64(r)*104729)))
		res, err := b.BaumWelch(sequences, opts)
		if err != nil {
			return nil, hmm.TrainResult{}, err
		}
		if best == nil || res.LogLikelihood > bestRes.LogLikelihood {
			best, bestRes = b, res
		}
	}
	return best, bestRes, nil
}

// ---- small numeric helpers (kept local; see package hmm for rationale) ----

func randomRow(n int, rng *rand.Rand) []float64 {
	r := make([]float64, n)
	var sum float64
	for i := range r {
		r[i] = 0.5 + rng.Float64()
		sum += r[i]
	}
	for i := range r {
		r[i] /= sum
	}
	return r
}

func makeMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	m := make([][]float64, rows)
	for i := range m {
		m[i], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

func makeCube(a, b, c int) [][][]float64 {
	out := make([][][]float64, a)
	for i := range out {
		out[i] = makeMatrix(b, c)
	}
	return out
}

func normalize(row []float64) float64 {
	var sum float64
	for _, v := range row {
		sum += v
	}
	if sum == 0 {
		u := 1 / float64(len(row))
		for i := range row {
			row[i] = u
		}
		return 1e-300
	}
	for i := range row {
		row[i] /= sum
	}
	return sum
}

func floorAndNormalize(row []float64, floor float64) {
	var sum float64
	for i := range row {
		if row[i] < floor {
			row[i] = floor
		}
		sum += row[i]
	}
	for i := range row {
		row[i] /= sum
	}
}

func checkRow(name string, row []float64) error {
	var sum float64
	for _, v := range row {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bihmm: %s contains invalid probability %v", name, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("bihmm: %s sums to %v, want 1", name, sum)
	}
	return nil
}
