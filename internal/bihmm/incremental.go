// Incremental forward-state maintenance for the consumer b-HMM.
//
// The scaled forward recurrence is Markovian: row t depends only on the
// normalized row t-1, the model parameters and observation t. A
// ForwardState therefore caches just the latest normalized alpha row and
// the prefix length; Extend folds new observations in by replaying the
// exact statement sequence of Forward on that row, which makes the
// resulting row bitwise identical to a full Forward pass over the whole
// prefix (same operations, same order, same operands — proved by
// induction on the prefix length and pinned by TestExtendMatchesForward).
//
// This is what turns the per-refresh prediction cost of a long-history
// consumer from O(T·NU²) into O(new·NU²): the ssRec engine keeps one
// ForwardState per (user, long/short side) and folds in only the
// observations that arrived since the last index refresh
// (core.Config.IncrementalFold).
package bihmm

// ForwardState caches the scaled forward pass over a growing observation
// prefix: the last normalized alpha row and how many observations produced
// it. The zero value is an empty state for no model; Extend binds it to a
// model on first use.
type ForwardState struct {
	m     *BHMM
	alpha []float64 // last normalized alpha row (undefined when n == 0)
	next  []float64 // scratch row swapped with alpha each step
	n     int
}

// Len returns how many observations the state has absorbed.
func (st *ForwardState) Len() int { return st.n }

// For reports whether the state currently tracks model m — callers must
// Reset (or let Extend auto-reset) when the consumer's model changed,
// since alpha rows from a different parameter set are meaningless.
func (st *ForwardState) For(m *BHMM) bool { return st.m == m }

// Reset empties the state and binds it to m, keeping the row buffers.
func (st *ForwardState) Reset(m *BHMM) {
	st.m = m
	st.n = 0
}

// Extend folds obs into the state, replaying Forward's recurrence on the
// cached row. Extending a state bound to a different model resets it
// first (the fallback path: the whole prefix must then be replayed by the
// caller). After Extend(st, seq[st.Len():]) the state row equals
// Forward(seq)'s last normalized alpha row bitwise.
func (m *BHMM) Extend(st *ForwardState, obs []Obs) {
	if st.m != m {
		st.Reset(m)
	}
	if cap(st.alpha) < m.NU {
		st.alpha = make([]float64, m.NU)
		st.next = make([]float64, m.NU)
	}
	st.alpha = st.alpha[:m.NU]
	st.next = st.next[:m.NU]
	for _, o := range obs {
		if st.n == 0 {
			z0 := m.zSlot(o.Z)
			for i := 0; i < m.NU; i++ {
				st.alpha[i] = m.Pi[i] * m.B[z0][i][o.Cat]
			}
			normalize(st.alpha)
		} else {
			zt := m.zSlot(o.Z)
			prev, cur := st.alpha, st.next
			for j := 0; j < m.NU; j++ {
				var s float64
				for i := 0; i < m.NU; i++ {
					s += prev[i] * m.A[zt][i][j]
				}
				cur[j] = s * m.B[zt][j][o.Cat]
			}
			normalize(cur)
			st.alpha, st.next = cur, prev
		}
		st.n++
	}
}

// PredictNextMarginalState is PredictNextMarginal evaluated from a cached
// ForwardState instead of replaying the history: bitwise identical to
// PredictNextMarginal(seq, zDist) when st has absorbed exactly seq.
func (m *BHMM) PredictNextMarginalState(st *ForwardState, zDist []float64) []float64 {
	if zDist == nil {
		zDist = make([]float64, m.NZ+1)
		for i := range zDist {
			zDist[i] = 1 / float64(m.NZ+1)
		}
	}
	out := make([]float64, m.M)
	for z := 0; z <= m.NZ; z++ {
		if zDist[z] == 0 {
			continue
		}
		p := m.predictNextGivenZState(st, zForSlot(z, m.NZ))
		for c := range out {
			out[c] += zDist[z] * p[c]
		}
	}
	return out
}

// predictNextGivenZState mirrors PredictNextGivenZ on a cached state: the
// same A-step/B-step statements over the same values, including the
// empty-history special case (next = Pi, no transition applied).
func (m *BHMM) predictNextGivenZState(st *ForwardState, z int) []float64 {
	zs := m.zSlot(z)
	next := make([]float64, m.NU)
	if st.n == 0 {
		copy(next, m.Pi)
	} else {
		cur := st.alpha
		for j := 0; j < m.NU; j++ {
			var s float64
			for i := 0; i < m.NU; i++ {
				s += cur[i] * m.A[zs][i][j]
			}
			next[j] = s
		}
	}
	out := make([]float64, m.M)
	for c := 0; c < m.M; c++ {
		var s float64
		for j := 0; j < m.NU; j++ {
			s += next[j] * m.B[zs][j][c]
		}
		out[c] = s
	}
	return out
}
