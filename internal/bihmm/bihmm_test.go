package bihmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// plantedWorld builds a ground-truth generative process in which the
// consumer's behavior genuinely depends on the producer state z:
// z=0 pushes the consumer toward category 0, z=1 toward category 1,
// while the consumer's own chain alternates lazily between 2 and 3.
func plantedSequence(T int, rng *rand.Rand) []Obs {
	obs := make([]Obs, T)
	own := 2
	for t := 0; t < T; t++ {
		z := rng.Intn(2)
		var cat int
		if rng.Float64() < 0.75 {
			cat = z // producer-driven browse
		} else {
			if rng.Float64() < 0.3 {
				own = 5 - own // swap 2<->3
			}
			cat = own
		}
		obs[t] = Obs{Cat: cat, Z: z}
	}
	return obs
}

func TestNewRandomValid(t *testing.T) {
	b := NewRandom(3, 2, 5, rand.New(rand.NewSource(1)))
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(b.A) != 3 || len(b.B) != 3 { // NZ+1 slices
		t.Fatalf("A/B slices = %d/%d, want 3", len(b.A), len(b.B))
	}
}

func TestNewRandomPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRandom(0, 2, 3, rand.New(rand.NewSource(1)))
}

func TestZSlotMapping(t *testing.T) {
	b := NewRandom(2, 3, 4, rand.New(rand.NewSource(2)))
	cases := map[int]int{0: 0, 1: 1, 2: 2, ZUnknown: 3, 7: 3, -5: 3}
	for z, want := range cases {
		if got := b.zSlot(z); got != want {
			t.Errorf("zSlot(%d) = %d, want %d", z, got, want)
		}
	}
}

func TestForwardNormalized(t *testing.T) {
	b := NewRandom(3, 2, 4, rand.New(rand.NewSource(3)))
	obs := []Obs{{0, 0}, {1, 1}, {2, ZUnknown}, {3, 0}, {0, 1}}
	alpha, scale, ll := b.Forward(obs)
	for t2, row := range alpha {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("alpha[%d] sums to %v", t2, sum)
		}
	}
	if len(scale) != len(obs) || ll >= 0 {
		t.Errorf("scale len %d, ll %v", len(scale), ll)
	}
}

func TestForwardBackwardConsistency(t *testing.T) {
	b := NewRandom(3, 2, 4, rand.New(rand.NewSource(4)))
	obs := []Obs{{0, 0}, {1, 1}, {2, 0}, {3, 1}, {0, ZUnknown}}
	alpha, scale, _ := b.Forward(obs)
	beta := b.Backward(obs, scale)
	for t2 := range obs {
		var s float64
		for i := 0; i < b.NU; i++ {
			s += alpha[t2][i] * beta[t2][i]
		}
		s *= scale[t2]
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("t=%d: alpha·beta·scale = %v", t2, s)
		}
	}
}

func TestEmptySequence(t *testing.T) {
	b := NewRandom(2, 1, 3, rand.New(rand.NewSource(5)))
	alpha, scale, ll := b.Forward(nil)
	if len(alpha) != 0 || len(scale) != 0 || ll != 0 {
		t.Fatal("empty forward misbehaved")
	}
	p := b.PredictNextGivenZ(nil, 0)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("empty-history prediction sums to %v", sum)
	}
}

func TestBaumWelchIncreasesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var seqs [][]Obs
	for i := 0; i < 15; i++ {
		seqs = append(seqs, plantedSequence(50, rng))
	}
	b := NewRandom(2, 2, 4, rand.New(rand.NewSource(7)))
	var before float64
	for _, s := range seqs {
		before += b.LogLikelihood(s)
	}
	res, err := b.BaumWelch(seqs, TrainOptions{MaxIter: 20})
	if err != nil {
		t.Fatalf("BaumWelch: %v", err)
	}
	var after float64
	for _, s := range seqs {
		after += b.LogLikelihood(s)
	}
	if after < before {
		t.Errorf("likelihood decreased: %v -> %v", before, after)
	}
	if res.Iterations == 0 {
		t.Error("no iterations")
	}
	if err := b.Validate(); err != nil {
		t.Errorf("invalid after training: %v", err)
	}
}

func TestBaumWelchErrors(t *testing.T) {
	b := NewRandom(2, 1, 3, rand.New(rand.NewSource(8)))
	if _, err := b.BaumWelch(nil, TrainOptions{}); err != ErrNoObservations {
		t.Errorf("err = %v", err)
	}
	if _, err := b.BaumWelch([][]Obs{{{Cat: 9, Z: 0}}}, TrainOptions{}); err == nil {
		t.Error("out-of-range category accepted")
	}
}

func TestConditionedPredictionLearnsZDependency(t *testing.T) {
	// After training on the planted world, prediction conditioned on z=0
	// must put more mass on category 0 than prediction conditioned on z=1,
	// and vice versa.
	rng := rand.New(rand.NewSource(9))
	var seqs [][]Obs
	for i := 0; i < 30; i++ {
		seqs = append(seqs, plantedSequence(60, rng))
	}
	b, _, err := Fit(3, 2, 4, seqs, 11, TrainOptions{MaxIter: 30, Restarts: 3})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	hist := plantedSequence(20, rng)
	p0 := b.PredictNextGivenZ(hist, 0)
	p1 := b.PredictNextGivenZ(hist, 1)
	if p0[0] <= p1[0] {
		t.Errorf("p(c0|z=0)=%v not > p(c0|z=1)=%v", p0[0], p1[0])
	}
	if p1[1] <= p0[1] {
		t.Errorf("p(c1|z=1)=%v not > p(c1|z=0)=%v", p1[1], p0[1])
	}
}

func TestBiHMMBeatsPlainHMMOnPlantedWorld(t *testing.T) {
	// The Fig. 5 claim in miniature: when consumer behavior depends on
	// producer state, the conditioned model predicts the next category
	// better than a plain HMM that ignores z.
	rng := rand.New(rand.NewSource(12))
	seq := plantedSequence(400, rng)
	split := len(seq) * 8 / 10

	// BiHMM.
	bi, _, err := Fit(3, 2, 4, [][]Obs{seq[:split]}, 13, TrainOptions{MaxIter: 25, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	biAcc := EvaluateNextPrediction(bi, seq, split)

	// Plain HMM on the same data with z erased (simulated by ZUnknown so
	// the single shared bucket is used throughout).
	flat := make([]Obs, len(seq))
	for i, o := range seq {
		flat[i] = Obs{Cat: o.Cat, Z: ZUnknown}
	}
	plain, _, err := Fit(3, 0, 4, [][]Obs{flat[:split]}, 13, TrainOptions{MaxIter: 25, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	plainAcc := EvaluateNextPrediction(plain, flat, split)

	if biAcc <= plainAcc {
		t.Errorf("BiHMM accuracy %.3f not above plain HMM %.3f", biAcc, plainAcc)
	}
}

func TestPredictNextMarginal(t *testing.T) {
	b := NewRandom(2, 2, 3, rand.New(rand.NewSource(14)))
	hist := []Obs{{0, 0}, {1, 1}}
	p := b.PredictNextMarginal(hist, nil)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("marginal prediction sums to %v", sum)
	}
	// Weighted marginal with all mass on z=0 equals conditional on z=0.
	zd := []float64{1, 0, 0}
	pm := b.PredictNextMarginal(hist, zd)
	pc := b.PredictNextGivenZ(hist, 0)
	for i := range pm {
		if math.Abs(pm[i]-pc[i]) > 1e-12 {
			t.Fatalf("marginal(z=0) != conditional: %v vs %v", pm, pc)
		}
	}
}

// Property: rows stay stochastic after training on arbitrary data.
func TestTrainStochasticProperty(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) < 6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		seq := make([]Obs, len(raw))
		for i, v := range raw {
			z := int(v % 3)
			if z == 2 {
				z = ZUnknown
			}
			seq[i] = Obs{Cat: int(v) % 4, Z: z}
		}
		b := NewRandom(2, 2, 4, rng)
		if _, err := b.BaumWelch([][]Obs{seq}, TrainOptions{MaxIter: 4}); err != nil {
			return false
		}
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBHMMForward(b *testing.B) {
	m := NewRandom(4, 3, 19, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	obs := make([]Obs, 150)
	for i := range obs {
		obs[i] = Obs{Cat: rng.Intn(19), Z: rng.Intn(3)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(obs)
	}
}

func BenchmarkBHMMPredict(b *testing.B) {
	m := NewRandom(4, 3, 19, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	obs := make([]Obs, 50)
	for i := range obs {
		obs[i] = Obs{Cat: rng.Intn(19), Z: rng.Intn(3)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictNextGivenZ(obs, i%3)
	}
}
