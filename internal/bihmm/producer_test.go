package bihmm

import (
	"math/rand"
	"testing"

	"ssrec/internal/hmm"
)

// producerHistories builds synthetic per-producer category sequences with
// clear regimes: producer pX alternates between long runs of category a
// and category b.
func producerHistories() map[string][]int {
	mk := func(a, b, runs, runLen int) []int {
		var seq []int
		for r := 0; r < runs; r++ {
			c := a
			if r%2 == 1 {
				c = b
			}
			for i := 0; i < runLen; i++ {
				seq = append(seq, c)
			}
		}
		return seq
	}
	return map[string][]int{
		"p0": mk(0, 1, 6, 8),
		"p1": mk(2, 3, 6, 8),
		"p2": {0, 1}, // too short to train
	}
}

func layerOpts() ProducerLayerOptions {
	return ProducerLayerOptions{
		NZ:         2,
		MinHistory: 5,
		Seed:       1,
		Train:      hmm.TrainOptions{MaxIter: 20, Restarts: 2},
	}
}

func TestFitProducerLayerTrainsEligible(t *testing.T) {
	pl := FitProducerLayer(producerHistories(), 4, layerOpts())
	if pl.TrainedProducers() != 2 {
		t.Fatalf("trained %d producers, want 2", pl.TrainedProducers())
	}
	if pl.Model("p0") == nil || pl.Model("p1") == nil {
		t.Fatal("missing models for eligible producers")
	}
	if pl.Model("p2") != nil {
		t.Fatal("short-history producer was trained")
	}
}

func TestStateAt(t *testing.T) {
	pl := FitProducerLayer(producerHistories(), 4, layerOpts())
	h := producerHistories()["p0"]
	for pos := range h {
		z := pl.StateAt("p0", pos)
		if z < 0 || z >= 2 {
			t.Fatalf("StateAt(p0,%d) = %d out of range", pos, z)
		}
	}
	if pl.StateAt("p0", -1) != ZUnknown || pl.StateAt("p0", 10_000) != ZUnknown {
		t.Error("out-of-range positions must be ZUnknown")
	}
	if pl.StateAt("p2", 0) != ZUnknown {
		t.Error("untrained producer must be ZUnknown")
	}
	if pl.StateAt("ghost", 0) != ZUnknown {
		t.Error("unknown producer must be ZUnknown")
	}
}

func TestDecodedStatesTrackRegimes(t *testing.T) {
	// Within one long run the decoded state should be constant most of
	// the time, and the two runs should map to different states.
	pl := FitProducerLayer(producerHistories(), 4, layerOpts())
	h := producerHistories()["p0"]
	// Majority state of first run vs second run.
	count := func(lo, hi int) map[int]int {
		m := map[int]int{}
		for pos := lo; pos < hi; pos++ {
			m[pl.StateAt("p0", pos)]++
		}
		return m
	}
	maj := func(m map[int]int) int {
		best, arg := -1, 0
		for k, v := range m {
			if v > best {
				best, arg = v, k
			}
		}
		return arg
	}
	first, second := maj(count(0, 8)), maj(count(8, 16))
	_ = h
	if first == second {
		t.Errorf("regimes decoded to same state %d", first)
	}
}

func TestCurrentZ(t *testing.T) {
	pl := FitProducerLayer(producerHistories(), 4, layerOpts())
	if z := pl.CurrentZ("p0"); z < 0 || z >= 2 {
		t.Errorf("CurrentZ(p0) = %d", z)
	}
	if pl.CurrentZ("p2") != ZUnknown {
		t.Error("untrained producer CurrentZ must be ZUnknown")
	}
	if pl.CurrentZ("ghost") != ZUnknown {
		t.Error("unknown producer CurrentZ must be ZUnknown")
	}
}

func TestObserveItemExtendsStates(t *testing.T) {
	pl := FitProducerLayer(producerHistories(), 4, layerOpts())
	before := len(pl.states["p0"])
	pl.ObserveItem("p0", 0)
	if len(pl.states["p0"]) != before+1 {
		t.Fatalf("states not extended: %d -> %d", before, len(pl.states["p0"]))
	}
	z := pl.StateAt("p0", before)
	if z < 0 || z >= 2 {
		t.Fatalf("extended state %d out of range", z)
	}
	// Untrained producers accumulate history without states.
	pl.ObserveItem("p2", 1)
	if len(pl.states["p2"]) != 0 {
		t.Error("untrained producer gained states")
	}
	if len(pl.histories["p2"]) != 3 {
		t.Errorf("history len %d, want 3", len(pl.histories["p2"]))
	}
}

func TestRefitPromotesProducer(t *testing.T) {
	pl := FitProducerLayer(producerHistories(), 4, layerOpts())
	// p2 has 2 items; feed more until eligible.
	for i := 0; i < 10; i++ {
		pl.ObserveItem("p2", i%2)
	}
	if ok := pl.Refit("p2", 99, hmm.TrainOptions{MaxIter: 10}); !ok {
		t.Fatal("Refit failed for eligible producer")
	}
	if pl.Model("p2") == nil {
		t.Fatal("no model after Refit")
	}
	if pl.CurrentZ("p2") == ZUnknown {
		t.Error("CurrentZ still unknown after Refit")
	}
}

func TestRefitRejectsShortHistory(t *testing.T) {
	pl := FitProducerLayer(map[string][]int{"q": {0}}, 2, layerOpts())
	if pl.Refit("q", 1, hmm.TrainOptions{MaxIter: 5}) {
		t.Fatal("Refit accepted short history")
	}
}

func TestSelectConsumerStates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	seq := plantedSequence(200, rng)
	n, m, acc := SelectConsumerStates(seq, 4, 2, 4, 5, TrainOptions{MaxIter: 10, Restarts: 1})
	if n < 1 || n > 4 {
		t.Fatalf("selected %d states", n)
	}
	if m == nil {
		t.Fatal("nil model")
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
}

func TestSelectConsumerStatesTinySequence(t *testing.T) {
	seq := []Obs{{0, 0}, {1, 0}}
	n, m, _ := SelectConsumerStates(seq, 3, 1, 2, 1, TrainOptions{MaxIter: 3})
	if m == nil || n < 1 {
		t.Fatalf("degenerate selection: n=%d m=%v", n, m)
	}
}

func TestHMMSelectStates(t *testing.T) {
	// Sticky two-regime sequence: more than one state should help, and
	// the selection must return a valid model regardless.
	var seq []int
	for r := 0; r < 10; r++ {
		c := r % 2
		for i := 0; i < 10; i++ {
			seq = append(seq, c)
		}
	}
	n, m, acc := hmm.SelectStates(seq, 4, 2, 3, hmm.TrainOptions{MaxIter: 15, Restarts: 2})
	if n < 1 || n > 4 || m == nil {
		t.Fatalf("n=%d m=%v", n, m)
	}
	if acc <= 0.5 {
		t.Errorf("accuracy %.2f too low for a predictable sequence", acc)
	}
}
