package bihmm

import (
	"math/rand"
	"testing"
)

// randObsSeq builds a mixed observation sequence with known and unknown
// producer states, the shapes the consumer layer actually produces.
func randObsSeq(rng *rand.Rand, m *BHMM, n int) []Obs {
	obs := make([]Obs, n)
	for i := range obs {
		z := rng.Intn(m.NZ + 1)
		if z == m.NZ {
			z = ZUnknown
		}
		obs[i] = Obs{Cat: rng.Intn(m.M), Z: z}
	}
	return obs
}

// TestExtendMatchesForward pins the bitwise-identity claim: after
// extending a state observation by observation, the cached row equals the
// last normalized alpha row of a full Forward pass over the same prefix —
// exactly, not approximately — and the marginal next-category prediction
// from the state equals PredictNextMarginal on the replayed history.
func TestExtendMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewRandom(4, 3, 5, rng)
	seq := randObsSeq(rng, m, 60)
	zDist := []float64{0.1, 0.2, 0.3, 0.4}

	var st ForwardState
	for n := 0; n <= len(seq); n++ {
		if n > 0 {
			m.Extend(&st, seq[n-1:n]) // one observation at a time
		}
		if st.Len() != n && n > 0 {
			t.Fatalf("after %d obs: Len() = %d", n, st.Len())
		}
		if n > 0 {
			alpha, _, _ := m.Forward(seq[:n])
			last := alpha[n-1]
			for i := range last {
				if st.alpha[i] != last[i] {
					t.Fatalf("prefix %d state %d: cached row %v != forward row %v",
						n, i, st.alpha[i], last[i])
				}
			}
		}
		for _, zd := range [][]float64{nil, zDist} {
			want := m.PredictNextMarginal(seq[:n], zd)
			got := m.PredictNextMarginalState(&st, zd)
			if len(got) != len(want) {
				t.Fatalf("prefix %d: length %d != %d", n, len(got), len(want))
			}
			for c := range want {
				if got[c] != want[c] {
					t.Fatalf("prefix %d cat %d: state predict %v != full predict %v",
						n, c, got[c], want[c])
				}
			}
		}
	}
}

// TestExtendChunked checks that folding in arbitrary-size chunks (the
// shape the engine produces: several observations between flushes) gives
// the same row as one-at-a-time extension.
func TestExtendChunked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewRandom(3, 2, 4, rng)
	seq := randObsSeq(rng, m, 40)

	var st ForwardState
	for i := 0; i < len(seq); {
		step := 1 + rng.Intn(7)
		if i+step > len(seq) {
			step = len(seq) - i
		}
		m.Extend(&st, seq[i:i+step])
		i += step
	}
	alpha, _, _ := m.Forward(seq)
	last := alpha[len(seq)-1]
	for i := range last {
		if st.alpha[i] != last[i] {
			t.Fatalf("state %d: chunked row %v != forward row %v", i, st.alpha[i], last[i])
		}
	}
}

// TestExtendModelSwapResets covers the fallback: extending a state bound
// to a different model must reset it, so replaying the full prefix under
// the new model yields the new model's forward row, not a mixture.
func TestExtendModelSwapResets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m1 := NewRandom(3, 2, 4, rng)
	m2 := NewRandom(3, 2, 4, rng)
	seq := randObsSeq(rng, m1, 10)

	var st ForwardState
	m1.Extend(&st, seq)
	if !st.For(m1) || st.For(m2) {
		t.Fatal("For() does not track the bound model")
	}
	// Auto-reset on mismatched Extend: caller replays the whole prefix.
	m2.Extend(&st, seq)
	if !st.For(m2) || st.Len() != len(seq) {
		t.Fatalf("after swap: For(m2)=%v Len=%d", st.For(m2), st.Len())
	}
	alpha, _, _ := m2.Forward(seq)
	last := alpha[len(seq)-1]
	for i := range last {
		if st.alpha[i] != last[i] {
			t.Fatalf("state %d after model swap: %v != %v", i, st.alpha[i], last[i])
		}
	}
	// Explicit Reset rewinds without rebinding buffers.
	st.Reset(m1)
	if st.Len() != 0 || !st.For(m1) {
		t.Fatal("Reset did not rewind the state")
	}
}

// BenchmarkPredictFullVsIncremental quantifies the win: predicting after
// one appended observation on a 200-long history.
func BenchmarkPredictFullVsIncremental(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := NewRandom(4, 3, 6, rng)
	seq := randObsSeq(rng, m, 200)

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.PredictNextMarginal(seq, nil)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		var st ForwardState
		m.Extend(&st, seq[:len(seq)-1])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Steady state: fold one observation, predict. (The fold mutates
			// st, so successive iterations model an ever-growing history —
			// exactly the production shape.)
			m.Extend(&st, seq[len(seq)-1:])
			m.PredictNextMarginalState(&st, nil)
		}
	})
}
