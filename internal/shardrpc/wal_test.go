// wal_test.go covers the durable-ingest surface of the shard RPC layer:
// the delta catch-up replay RPC (POST /shard/v1/replay) must apply
// missed batches exactly like the live write path and mint a fresh boot
// epoch; a Server with an attached WAL must recover its exact pre-stop
// state via BootFromWAL; and the crash-recovery acceptance gate runs the
// REAL ssrec-shardd binary, kill -9s it at a micro-batch boundary
// mid-ingest, restarts it with the same -wal-dir and requires the
// stitched transcript to be bit-identical to an uninterrupted single
// engine — with zero manual recovery steps.
package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/shardtest"
	"ssrec/internal/sigtree"
	"ssrec/internal/wal"
)

// TestReplayRPCRoundTrip: the delta catch-up RPC refuses a blank shard
// with the typed unavailable error (steering the supervisor to the
// snapshot path), and on a trained shard applies the streamed batches
// exactly like the live write path — a sibling fed the same data through
// RegisterItems/ObserveBatch answers identically — while minting a fresh
// boot epoch as proof of reseed.
func TestReplayRPCRoundTrip(t *testing.T) {
	ctx := context.Background()
	tc := buildTinyCorpus()
	snap := tinySnapshot(t)

	blank := NewClient(startLoopback(t, 0, 1).addr, 0, 1)
	defer blank.Close()
	if err := blank.Replay(ctx, []shard.ReplayBatch{{Seq: 1}}); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("replay against a blank shard: err = %v, want ErrShardUnavailable", err)
	}

	// Replayed shard vs. a control sibling driven through the live write
	// path: both boot from the same snapshot and ingest the same data.
	cR := NewClient(startLoopback(t, 0, 1).addr, 0, 1)
	defer cR.Close()
	cW := NewClient(startLoopback(t, 0, 1).addr, 0, 1)
	defer cW.Close()
	for _, c := range []*Client{cR, cW} {
		if err := c.Handoff(ctx, snap); err != nil {
			t.Fatalf("handoff: %v", err)
		}
	}
	epoch0, err := cR.Ping(ctx)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}

	items := []model.Item{tc.fresh[0]}
	obs := []core.Observation{
		{UserID: "user1", Item: tc.fresh[0], Timestamp: 900},
		{UserID: "user2", Item: tc.items[0], Timestamp: 901},
	}
	if err := cR.Replay(ctx, []shard.ReplayBatch{{Seq: 7, Items: items}, {Seq: 8, Obs: obs}}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if _, err := cW.RegisterItems(ctx, items); err != nil {
		t.Fatalf("control register: %v", err)
	}
	if rep, err := cW.ObserveBatch(ctx, obs); err != nil || rep.Applied != len(obs) {
		t.Fatalf("control observe: rep=%+v err=%v", rep, err)
	}

	epoch1, err := cR.Ping(ctx)
	if err != nil {
		t.Fatalf("ping after replay: %v", err)
	}
	if epoch1 == epoch0 {
		t.Fatalf("replay did not mint a fresh boot epoch (still %q); the supervisor's proof-of-reseed needs one", epoch0)
	}

	o := core.ResolveOptions(core.WithK(5))
	want, err := cW.Recommend(ctx, tc.query, o, nil)
	if err != nil {
		t.Fatalf("control recommend: %v", err)
	}
	got, err := cR.Recommend(ctx, tc.query, o, nil)
	if err != nil {
		t.Fatalf("replayed recommend: %v", err)
	}
	want.Stats, got.Stats = sigtree.SearchStats{}, sigtree.SearchStats{}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replayed shard diverged from the live write path:\n  want: %+v\n  got:  %+v", want, got)
	}
}

// walLoopback serves shard idx/of with an attached WAL on an ephemeral
// loopback port, without booting it.
func walLoopback(t *testing.T, dir string, idx, of int) (*loopback, *wal.Log) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Policy: wal.PolicyBatch})
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	t.Cleanup(func() { l.Close() }) //nolint:errcheck
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv, err := NewServer(idx, of)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	srv.WAL = l
	hs := srv.NewHTTPServer(ln.Addr().String())
	go hs.Serve(ln) //nolint:errcheck // closed by Cleanup
	lb := &loopback{srv: srv, hs: hs, addr: ln.Addr().String()}
	t.Cleanup(func() { hs.Close() })
	return lb, l
}

// TestWALServerRecovery: a Server with an attached WAL checkpoints the
// snapshot handoff, logs every admitted write, and a NEW Server pointed
// at the same directory recovers the exact serving state via BootFromWAL
// — checkpoint plus delta-tail replay, no handoff involved.
func TestWALServerRecovery(t *testing.T) {
	ctx := context.Background()
	tc := buildTinyCorpus()
	dir := t.TempDir()

	lb1, wal1 := walLoopback(t, dir, 0, 1)
	c1 := NewClient(lb1.addr, 0, 1)
	defer c1.Close()
	if err := c1.Handoff(ctx, tinySnapshot(t)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if st := wal1.Stats(); !st.HasCheckpoint {
		t.Fatalf("handoff did not anchor a checkpoint: %+v", st)
	}
	if _, err := c1.RegisterItems(ctx, []model.Item{tc.fresh[0]}); err != nil {
		t.Fatalf("register: %v", err)
	}
	obs := []core.Observation{
		{UserID: "user1", Item: tc.fresh[0], Timestamp: 900},
		{UserID: "user3", Item: tc.items[1], Timestamp: 901},
	}
	if rep, err := c1.ObserveBatch(ctx, obs); err != nil || rep.Applied != len(obs) {
		t.Fatalf("observe: rep=%+v err=%v", rep, err)
	}
	o := core.ResolveOptions(core.WithK(5))
	want, err := c1.Recommend(ctx, tc.query, o, nil)
	if err != nil {
		t.Fatalf("pre-stop recommend: %v", err)
	}

	// Stop WITHOUT a shutdown checkpoint: recovery must replay the two
	// logged write batches on top of the handoff checkpoint.
	lb1.hs.Close()
	if err := wal1.Close(); err != nil {
		t.Fatalf("close wal: %v", err)
	}

	lb2, wal2 := walLoopback(t, dir, 0, 1)
	recovered, replayed, err := lb2.srv.BootFromWAL(ctx)
	if err != nil {
		t.Fatalf("BootFromWAL: %v", err)
	}
	if !recovered || replayed != 2 {
		t.Fatalf("recovered=%v replayed=%d, want true/2 (register + observe tail)", recovered, replayed)
	}
	c2 := NewClient(lb2.addr, 0, 1)
	defer c2.Close()
	got, err := c2.Recommend(ctx, tc.query, o, nil)
	if err != nil {
		t.Fatalf("post-recovery recommend: %v", err)
	}
	want.Stats, got.Stats = sigtree.SearchStats{}, sigtree.SearchStats{}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered state diverged:\n  want: %+v\n  got:  %+v", want, got)
	}

	// The per-shard stats RPC surfaces the log's state.
	st := c2.Stats()
	if st.WAL == nil || !st.WAL.HasCheckpoint || st.WAL.LastSeq < st.WAL.CheckpointSeq {
		t.Fatalf("stats RPC wal block = %+v, want checkpoint + tail watermarks", st.WAL)
	}
	_ = wal2
}

// buildShardd compiles the real ssrec-shardd binary into a temp dir.
func buildShardd(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "ssrec-shardd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/ssrec-shardd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build ssrec-shardd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral loopback port and releases it for a
// child process to bind.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startSharddProc launches one durable shardd daemon; its log streams to
// logPath (appended across restarts so the recovery log lines survive).
func startSharddProc(t *testing.T, bin, addr string, idx int, walDir, logPath string) *exec.Cmd {
	t.Helper()
	logf, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-addr", addr, "-index", strconv.Itoa(idx), "-of", "2",
		"-wal-dir", walDir, "-wal-fsync", "batch", "-wal-checkpoint", "0")
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatalf("start shardd %d: %v", idx, err)
	}
	logf.Close() // the child holds its own descriptor
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	return cmd
}

// waitHTTP polls path on addr until it answers 200, failing fast if the
// daemon process exits first.
func waitHTTP(t *testing.T, cmd *exec.Cmd, addr, path, logPath string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get("http://" + addr + path)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			logTail, _ := os.ReadFile(logPath)
			t.Fatalf("shardd at %s never answered 200 on %s (process state %v); log:\n%s",
				addr, path, cmd.ProcessState, logTail)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCrashRecoveryKill9 is the tentpole acceptance gate: two REAL
// ssrec-shardd daemons run with -wal-dir, one is SIGKILLed at a
// micro-batch boundary mid-ingest and restarted with nothing but the
// same flags — it must recover from its latest checkpoint (anchored by
// the boot handoff) plus the logged delta tail, and the stitched
// transcript (batches before the kill + batches after the restart) must
// be bit-identical to an uninterrupted single reference engine. No
// snapshot re-handoff, no manual steps. When SSREC_WAL_STATS names a
// file, the final per-shard WAL stats land there as a CI artifact.
func TestCrashRecoveryKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and drives real shardd processes; skipped in -short")
	}
	ctx := context.Background()
	bin := buildShardd(t)
	fx := shardtest.Load(t)
	tmp := t.TempDir()

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, 0)

	const n = 2
	addrs := make([]string, n)
	walDirs := make([]string, n)
	logPaths := make([]string, n)
	procs := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		addrs[i] = freeAddr(t)
		walDirs[i] = filepath.Join(tmp, fmt.Sprintf("wal%d", i))
		logPaths[i] = filepath.Join(tmp, fmt.Sprintf("shardd%d.log", i))
		procs[i] = startSharddProc(t, bin, addrs[i], i, walDirs[i], logPaths[i])
		waitHTTP(t, procs[i], addrs[i], "/shard/v1/livez", logPaths[i], 30*time.Second)
	}

	r := remoteRouter(t, addrs, fx.Snapshot) // boot handoff anchors each shard's first checkpoint

	got := &shardtest.Transcript{}
	replayRange := func(from, to int) {
		t.Helper()
		for b := from; b < to; b++ {
			lo := b * shardtest.ReplayBatch
			hi := min(lo+shardtest.ReplayBatch, len(fx.Obs))
			rep, err := r.ObserveBatch(ctx, fx.Obs[lo:hi])
			if err != nil {
				t.Fatalf("batch %d: ObserveBatch: %v", b, err)
			}
			rep.Errors = nil
			got.Reports = append(got.Reports, rep)
			results, err := r.RecommendBatch(ctx, shardtest.QueryWindow(fx.Queries, b), core.WithK(shardtest.ReplayK))
			if err != nil {
				t.Fatalf("batch %d: RecommendBatch: %v", b, err)
			}
			for i := range results {
				results[i].Stats = sigtree.SearchStats{}
			}
			got.Results = append(got.Results, results)
		}
	}

	total := (len(fx.Obs) + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	cut := total / 2
	replayRange(0, cut)

	// kill -9 shard 1 at the batch boundary: every acked batch is durable
	// under -wal-fsync=batch, so recovery owes exactly batches [0, cut).
	if err := procs[1].Process.Kill(); err != nil {
		t.Fatalf("kill shardd 1: %v", err)
	}
	procs[1].Wait() //nolint:errcheck // SIGKILL makes a non-nil exit inevitable
	t.Logf("shard 1 SIGKILLed after batch %d/%d; restarting with the same -wal-dir", cut, total)

	procs[1] = startSharddProc(t, bin, addrs[1], 1, walDirs[1], logPaths[1])
	// Readiness IS the recovery proof: a blank restart would answer 503
	// until a snapshot handoff, and none is ever sent.
	waitHTTP(t, procs[1], addrs[1], "/shard/v1/readyz", logPaths[1], 60*time.Second)

	replayRange(cut, total)
	shardtest.Diff(t, want, got, "kill -9 stitched transcript")

	// The recovered shard must be running on checkpoint + replayed tail,
	// not a fresh handoff.
	c := NewClient(addrs[1], 1, n)
	defer c.Close()
	st := c.Stats()
	if st.WAL == nil || !st.WAL.HasCheckpoint || st.WAL.LastSeq <= st.WAL.CheckpointSeq {
		t.Fatalf("recovered shard wal stats = %+v, want handoff checkpoint + logged tail", st.WAL)
	}

	if artifact := os.Getenv("SSREC_WAL_STATS"); artifact != "" {
		shards := make([]json.RawMessage, 0, n)
		for _, addr := range addrs {
			resp, err := http.Get("http://" + addr + "/shard/v1/stats")
			if err != nil {
				t.Fatalf("stats artifact fetch: %v", err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("stats artifact read: %v", err)
			}
			shards = append(shards, body)
		}
		payload, err := json.MarshalIndent(map[string]any{
			"test":       "TestCrashRecoveryKill9",
			"cut_batch":  cut,
			"batches":    total,
			"fsync":      "batch",
			"shards":     shards,
			"recovered":  1,
			"transcript": "bit-identical",
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(artifact, payload, 0o644); err != nil {
			t.Fatalf("write wal stats artifact: %v", err)
		}
		t.Logf("wal stats artifact written to %s", artifact)
	}
}
