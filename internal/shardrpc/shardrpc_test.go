// shardrpc_test.go: loopback test scaffolding plus protocol round-trip
// unit tests — a remote single shard must be observably identical to the
// engine it wraps, and every sentinel error must keep its errors.Is
// identity across the wire.
package shardrpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
)

// loopback is one in-process shardd on a real 127.0.0.1 listener —
// loopback TCP with the production HTTP/2 stack, not httptest shortcuts.
type loopback struct {
	srv  *Server
	hs   *http.Server
	addr string
}

// startLoopback serves shard idx/of on an ephemeral loopback port.
func startLoopback(tb testing.TB, idx, of int) *loopback {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatalf("listen: %v", err)
	}
	srv, err := NewServer(idx, of)
	if err != nil {
		tb.Fatalf("NewServer: %v", err)
	}
	hs := srv.NewHTTPServer(ln.Addr().String())
	go hs.Serve(ln) //nolint:errcheck // closed by Cleanup
	lb := &loopback{srv: srv, hs: hs, addr: ln.Addr().String()}
	tb.Cleanup(func() { hs.Close() })
	return lb
}

// tinyCorpus is a fast hand-rolled training corpus for protocol tests
// (the heavyweight conformance fixture lives in internal/shardtest).
type tinyCorpus struct {
	cfg     core.Config
	items   []model.Item
	irs     []model.Interaction
	resolve func(string) (model.Item, bool)
	query   model.Item
	fresh   []model.Item // post-training items for follow-up queries
}

func buildTinyCorpus() tinyCorpus {
	const cat = "music"
	byID := map[string]model.Item{}
	var items []model.Item
	var irs []model.Interaction
	ts := int64(0)
	for i := 0; i < 60; i++ {
		ts++
		v := model.Item{
			ID: fmt.Sprintf("it%02d", i), Category: cat, Producer: fmt.Sprintf("up%d", i%3),
			Entities: []string{fmt.Sprintf("e%d", i%7), "shared"}, Timestamp: ts,
		}
		items = append(items, v)
		byID[v.ID] = v
		for u := 0; u < 8; u++ {
			if (i+u)%2 == 0 {
				irs = append(irs, model.Interaction{
					UserID: fmt.Sprintf("user%d", u), ItemID: v.ID, Timestamp: ts + 1,
				})
			}
		}
	}
	var fresh []model.Item
	for i := 0; i < 8; i++ {
		fresh = append(fresh, model.Item{
			ID: fmt.Sprintf("fresh%d", i), Category: cat, Producer: fmt.Sprintf("up%d", i%3),
			Entities: []string{"shared", fmt.Sprintf("e%d", i%7)}, Timestamp: ts + 100 + int64(i),
		})
	}
	return tinyCorpus{
		cfg:     core.Config{Categories: []string{cat}, TrainMaxIter: 2, Restarts: 1, Seed: 5},
		items:   items,
		irs:     irs,
		resolve: func(id string) (model.Item, bool) { v, ok := byID[id]; return v, ok },
		query: model.Item{ID: "probe", Category: cat, Producer: "up0",
			Entities: []string{"shared", "e1"}, Timestamp: ts + 99},
		fresh: fresh,
	}
}

var tinySnapshotCache []byte

// tinySnapshot trains the tiny corpus once and returns the snapshot.
func tinySnapshot(tb testing.TB) []byte {
	tb.Helper()
	if tinySnapshotCache != nil {
		return tinySnapshotCache
	}
	tc := buildTinyCorpus()
	eng := core.New(tc.cfg)
	if err := eng.Train(tc.items, tc.irs, tc.resolve); err != nil {
		tb.Fatalf("train tiny corpus: %v", err)
	}
	var buf bytes.Buffer
	if err := eng.SaveTo(&buf); err != nil {
		tb.Fatalf("snapshot: %v", err)
	}
	tinySnapshotCache = buf.Bytes()
	return tinySnapshotCache
}

// TestRemoteShardMatchesEngine: a 1-shard remote deployment must answer
// every call bit-identically to the engine it wraps — results, scores,
// order, batch reports and per-item errors.
func TestRemoteShardMatchesEngine(t *testing.T) {
	snap := tinySnapshot(t)
	reference, err := core.LoadFrom(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	lb := startLoopback(t, 0, 1)
	c := NewClient(lb.addr, 0, 1)
	defer c.Close()
	ctx := context.Background()
	if err := c.Handoff(ctx, snap); err != nil {
		t.Fatalf("handoff: %v", err)
	}

	tc := buildTinyCorpus()
	o := core.ResolveOptions(core.WithK(5))

	// Query parity, including the no-bound fast path (b == nil).
	for _, v := range append([]model.Item{tc.query}, tc.fresh[:3]...) {
		want, werr := reference.RecommendBound(ctx, v, o, nil)
		got, gerr := c.Recommend(ctx, v, o, nil)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("item %s: err %v vs %v", v.ID, gerr, werr)
		}
		if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
			t.Fatalf("item %s: remote diverged\n got %v\nwant %v", v.ID, got.Recommendations, want.Recommendations)
		}
	}

	// Observe parity, including rejected entries: identical reports and
	// sentinel identities on the per-entry errors.
	batch := []core.Observation{
		{UserID: "user1", Item: tc.items[3], Timestamp: 500},
		{UserID: "", Item: tc.items[4], Timestamp: 501}, // invalid: empty user
		{UserID: "user2", Item: tc.items[5], Timestamp: 502},
	}
	want, werr := reference.ObserveBatch(ctx, batch)
	got, gerr := c.ObserveBatch(ctx, batch)
	if werr != nil || gerr != nil {
		t.Fatalf("observe errs: %v / %v", werr, gerr)
	}
	if got.Applied != want.Applied || got.Rejected != want.Rejected || got.Flushed != want.Flushed {
		t.Fatalf("report %+v, want %+v", got, want)
	}
	if len(got.Errors) != 1 || got.Errors[0].Index != 1 {
		t.Fatalf("errors = %+v", got.Errors)
	}
	if !errors.Is(got.Errors[0].Err, core.ErrInvalidObservation) {
		t.Fatalf("entry error lost sentinel identity: %v", got.Errors[0].Err)
	}
	if got.Errors[0].Err.Error() != want.Errors[0].Err.Error() {
		t.Fatalf("entry error message drifted: %q vs %q", got.Errors[0].Err, want.Errors[0].Err)
	}

	// Post-observe queries still agree (the observe really replicated).
	want2, _ := reference.RecommendBound(ctx, tc.fresh[4], o, nil)
	got2, _ := c.Recommend(ctx, tc.fresh[4], o, nil)
	if !reflect.DeepEqual(got2.Recommendations, want2.Recommendations) {
		t.Fatalf("post-observe divergence\n got %v\nwant %v", got2.Recommendations, want2.Recommendations)
	}

	// Sentinel errors cross the wire with identity AND message intact.
	alien := model.Item{ID: "alien", Category: "no-such-cat"}
	_, werr = reference.RecommendBound(ctx, alien, o, nil)
	_, gerr = c.Recommend(ctx, alien, o, nil)
	if !errors.Is(gerr, core.ErrUnknownCategory) {
		t.Fatalf("remote error lost sentinel: %v", gerr)
	}
	if gerr.Error() != werr.Error() {
		t.Fatalf("remote error message drifted: %q vs %q", gerr, werr)
	}

	// Stats parity with the wrapped engine's view.
	st := c.Stats()
	if !st.Trained || st.Shard != 0 || st.Users != reference.Users() {
		t.Fatalf("stats = %+v (reference users %d)", st, reference.Users())
	}
}

// TestUnbootedShard: every serving endpoint of a blank shardd maps to
// ErrShardUnavailable, health reports untrained, and Ping refuses it.
func TestUnbootedShard(t *testing.T) {
	lb := startLoopback(t, 1, 2)
	c := NewClient(lb.addr, 1, 2)
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Recommend(ctx, model.Item{ID: "x", Category: "c"}, core.ResolveOptions(), nil); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("recommend on blank shard: %v", err)
	}
	if _, err := c.ObserveBatch(ctx, []core.Observation{{UserID: "u", Item: model.Item{ID: "i"}}}); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("observe on blank shard: %v", err)
	}
	if _, err := c.RegisterItems(ctx, []model.Item{{ID: "i", Category: "c"}}); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("register on blank shard: %v", err)
	}
	if _, err := c.Ping(ctx); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("ping on blank shard: %v", err)
	}
	if st := c.Stats(); st.Trained {
		t.Fatalf("blank shard reports trained stats: %+v", st)
	}
}

// TestHandoffIdentityCheck: a snapshot addressed to the wrong shard
// identity is refused (409), and a client pointed at a shard that
// identifies differently fails Ping.
func TestHandoffIdentityCheck(t *testing.T) {
	snap := tinySnapshot(t)
	lb := startLoopback(t, 0, 2)
	ctx := context.Background()

	wrong := NewClient(lb.addr, 1, 2) // server is shard 0, client claims 1
	defer wrong.Close()
	if err := wrong.Handoff(ctx, snap); err == nil || errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("mismatched handoff: %v (want a non-transport refusal)", err)
	}

	right := NewClient(lb.addr, 0, 2)
	defer right.Close()
	if err := right.Handoff(ctx, snap); err != nil {
		t.Fatalf("matched handoff: %v", err)
	}
	if _, err := right.Ping(ctx); err != nil {
		t.Fatalf("ping after handoff: %v", err)
	}
	if _, err := wrong.Ping(ctx); err == nil {
		t.Fatal("ping accepted a shard that identifies as a different index")
	}
}

// TestHandoffGarbage: a corrupt snapshot is refused without disturbing
// the currently booted engine.
func TestHandoffGarbage(t *testing.T) {
	snap := tinySnapshot(t)
	lb := startLoopback(t, 0, 1)
	c := NewClient(lb.addr, 0, 1)
	defer c.Close()
	ctx := context.Background()
	if err := c.Handoff(ctx, snap); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if err := c.Handoff(ctx, []byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := c.Ping(ctx); err != nil {
		t.Fatalf("shard lost its engine after a refused handoff: %v", err)
	}
}

// TestCancellationIsNotUnavailable: a caller-cancelled context must
// surface as the context error, NOT as ErrShardUnavailable — the Router
// must never exclude a healthy shard because the caller gave up.
func TestCancellationIsNotUnavailable(t *testing.T) {
	snap := tinySnapshot(t)
	lb := startLoopback(t, 0, 1)
	c := NewClient(lb.addr, 0, 1)
	defer c.Close()
	if err := c.Handoff(context.Background(), snap); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tc := buildTinyCorpus()
	_, err := c.Recommend(ctx, tc.query, core.ResolveOptions(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatal("cancellation misclassified as shard unavailability")
	}
}

// TestErrWireRoundTrip: every sentinel keeps identity and message across
// encode/decode, and unknown errors degrade to plain messages.
func TestErrWireRoundTrip(t *testing.T) {
	cases := []error{
		core.ErrNotTrained,
		fmt.Errorf("%w: %q", core.ErrUnknownCategory, "sports"),
		fmt.Errorf("%w: empty user id", core.ErrInvalidObservation),
		context.Canceled,
		context.DeadlineExceeded,
		fmt.Errorf("wrap: %w", shard.ErrShardUnavailable),
		errors.New("free-form failure"),
	}
	for _, want := range cases {
		got := decodeErr(encodeErr(want))
		if got.Error() != want.Error() {
			t.Errorf("message drift: %q -> %q", want, got)
		}
		for _, sentinel := range []error{
			core.ErrNotTrained, core.ErrUnknownCategory, core.ErrInvalidObservation,
			context.Canceled, context.DeadlineExceeded, shard.ErrShardUnavailable,
		} {
			if errors.Is(want, sentinel) != errors.Is(got, sentinel) {
				t.Errorf("identity drift on %v vs %v for sentinel %v", want, got, sentinel)
			}
		}
	}
	if decodeErr(nil) != nil {
		t.Error("decodeErr(nil) != nil")
	}
	if encodeErr(nil) != nil {
		t.Error("encodeErr(nil) != nil")
	}
}

// TestBoundStreamDelivers: the full-duplex exchange really moves raises
// in both directions — a raise injected on the router side reaches the
// shard (observable as pruning: the shard's search skips entries), and
// the shard's own raise reaches the router-side bound.
func TestBoundStreamDelivers(t *testing.T) {
	snap := tinySnapshot(t)
	lb := startLoopback(t, 0, 1)
	lb.srv.BoundFlush = 100 * time.Microsecond
	c := NewClient(lb.addr, 0, 1)
	c.BoundFlush = 100 * time.Microsecond
	defer c.Close()
	ctx := context.Background()
	if err := c.Handoff(ctx, snap); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	tc := buildTinyCorpus()
	o := core.ResolveOptions(core.WithK(3))

	// Shard -> router: after a streamed exchange the router-side bound
	// carries the shard's k-th best exact score (raised by the search).
	b := sigtree.NewBound()
	res, err := c.Recommend(ctx, tc.query, o, b)
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	// The terminal line closes the exchange before the last raise may have
	// flushed, so the bound is only guaranteed to be <= the k-th score —
	// but with the aggressive flush interval above, at least ONE raise
	// must have landed for a query that fills its top-k.
	if v := b.Load(); math.IsInf(v, -1) {
		t.Fatal("router-side bound never raised by the shard's stream")
	}
	kth := res.Recommendations[len(res.Recommendations)-1].Score
	if v := b.Load(); v > kth {
		t.Fatalf("bound %v exceeds the k-th exact score %v (must be a lower bound)", v, kth)
	}
}
