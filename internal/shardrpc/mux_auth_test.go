// mux_auth_test.go covers the multiplexed query stream (the batched
// scatter leg) and the shared bearer-token layer: mux results must match
// the per-item exchange bit-for-bit, an old shardd without the endpoint
// must degrade to the per-item path transparently, cancellation must stay
// a context error, and every endpoint must 401 without the token.
package shardrpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/shard"
)

// bootClient dials a loopback shard and hands it the tiny snapshot.
func bootClient(t *testing.T, lb *loopback) *Client {
	t.Helper()
	c := NewClient(lb.addr, 0, 1)
	t.Cleanup(c.Close)
	if err := c.Handoff(context.Background(), tinySnapshot(t)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	return c
}

// TestMuxMatchesPerItem: the same queries over the multiplexed stream and
// the per-item exchange return identical rankings.
func TestMuxMatchesPerItem(t *testing.T) {
	tc := buildTinyCorpus()
	lb := startLoopback(t, 0, 1)
	muxed := bootClient(t, lb)
	perItem := NewClient(lb.addr, 0, 1)
	perItem.DisableMuxScatter = true
	t.Cleanup(perItem.Close)

	ctx := context.Background()
	o := core.ResolveOptions(core.WithK(5))
	for i, v := range append(tc.fresh, tc.query) {
		a, errA := muxed.Recommend(ctx, v, o, nil)
		b, errB := perItem.Recommend(ctx, v, o, nil)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query %d: err %v vs %v", i, errA, errB)
		}
		if !reflect.DeepEqual(a.Recommendations, b.Recommendations) {
			t.Fatalf("query %d: mux result diverged\n mux %v\n item %v", i, a.Recommendations, b.Recommendations)
		}
	}
}

// TestMuxConcurrentQueries hammers one stream with concurrent asks: every
// answer must land on its own caller.
func TestMuxConcurrentQueries(t *testing.T) {
	tc := buildTinyCorpus()
	lb := startLoopback(t, 0, 1)
	c := bootClient(t, lb)
	ref, err := core.LoadFrom(bytes.NewReader(tinySnapshot(t)))
	if err != nil {
		t.Fatal(err)
	}
	// Register the probe items up front, in one fixed order on both
	// deployments: concurrent queries would otherwise register them in
	// arbitrary order, and registration advances the expander (results
	// are deterministic only for a fixed registration order).
	ref.RegisterItemBatch(tc.fresh)
	if _, err := c.RegisterItems(context.Background(), tc.fresh); err != nil {
		t.Fatalf("register: %v", err)
	}
	o := core.ResolveOptions(core.WithK(3))
	want := make([]core.Result, len(tc.fresh))
	for i, v := range tc.fresh {
		want[i], err = ref.RecommendBound(context.Background(), v, o, nil)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
	}
	const rounds = 5
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, v := range tc.fresh {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := c.Recommend(context.Background(), v, o, nil)
				if err != nil {
					t.Errorf("query %s: %v", v.ID, err)
					return
				}
				if res.ItemID != v.ID || !reflect.DeepEqual(res.Recommendations, want[i].Recommendations) {
					t.Errorf("query %s: wrong answer routed back", v.ID)
				}
			}()
		}
	}
	wg.Wait()
}

// TestMuxFallbackOnOldServer: a shardd build without the query-stream
// endpoint answers 404; the client must fall back to the per-item
// exchange permanently and still serve.
func TestMuxFallbackOnOldServer(t *testing.T) {
	tc := buildTinyCorpus()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the pre-mux build: 404 the new endpoint, serve the rest.
	old := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == pathQueryStream {
			http.NotFound(w, r)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	hs := srv.NewHTTPServer(ln.Addr().String())
	hs.Handler = old
	go hs.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { hs.Close() })

	c := NewClient(ln.Addr().String(), 0, 1)
	t.Cleanup(c.Close)
	if err := c.Handoff(context.Background(), tinySnapshot(t)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	for i := 0; i < 3; i++ {
		res, err := c.Recommend(context.Background(), tc.query, core.ResolveOptions(core.WithK(3)), nil)
		if err != nil {
			t.Fatalf("fallback recommend %d: %v", i, err)
		}
		if len(res.Recommendations) == 0 {
			t.Fatalf("fallback recommend %d: empty", i)
		}
	}
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	if !c.noMux {
		t.Fatal("client did not latch the per-item fallback")
	}
}

// TestMuxCancellation: a cancelled caller gets its context error (not
// ErrShardUnavailable) and the stream survives for the next call.
func TestMuxCancellation(t *testing.T) {
	tc := buildTinyCorpus()
	lb := startLoopback(t, 0, 1)
	c := bootClient(t, lb)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Recommend(ctx, tc.query, core.ResolveOptions(core.WithK(3)), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled recommend = %v, want context.Canceled", err)
	}
	if errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("cancellation misclassified as unavailable: %v", err)
	}
	res, err := c.Recommend(context.Background(), tc.query, core.ResolveOptions(core.WithK(3)), nil)
	if err != nil || len(res.Recommendations) == 0 {
		t.Fatalf("stream unusable after a cancelled call: %v", err)
	}
}

// TestShardAuth: a shardd with -auth-token 401s tokenless and
// wrong-token calls on every surface, and serves with the right token.
func TestShardAuth(t *testing.T) {
	const token = "sekrit-fleet-token"
	tc := buildTinyCorpus()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv.AuthToken = token
	hs := srv.NewHTTPServer(ln.Addr().String())
	go hs.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { hs.Close() })

	ctx := context.Background()
	for name, tok := range map[string]string{"no token": "", "wrong token": "nope"} {
		c := NewClient(ln.Addr().String(), 0, 1)
		c.AuthToken = tok
		if err := c.Handoff(ctx, tinySnapshot(t)); err == nil || !strings.Contains(err.Error(), "401") {
			t.Fatalf("%s: handoff = %v, want 401", name, err)
		}
		if _, err := c.Ping(ctx); err == nil {
			t.Fatalf("%s: ping succeeded", name)
		}
		if _, err := c.Recommend(ctx, tc.query, core.ResolveOptions(core.WithK(3)), nil); err == nil {
			t.Fatalf("%s: recommend succeeded", name)
		}
		c.Close()
	}

	good := NewClient(ln.Addr().String(), 0, 1)
	good.AuthToken = token
	t.Cleanup(good.Close)
	if err := good.Handoff(ctx, tinySnapshot(t)); err != nil {
		t.Fatalf("authed handoff: %v", err)
	}
	if _, err := good.Ping(ctx); err != nil {
		t.Fatalf("authed ping: %v", err)
	}
	res, err := good.Recommend(ctx, tc.query, core.ResolveOptions(core.WithK(3)), nil)
	if err != nil || len(res.Recommendations) == 0 {
		t.Fatalf("authed recommend: %v (%d recs)", err, len(res.Recommendations))
	}
	if st := good.Stats(); !st.Trained {
		t.Fatal("authed stats reports untrained")
	}
}
