// client.go is the RemoteShard: a shard.Shard implementation that drives
// one shardd process over HTTP/2 + NDJSON. A shard.Router can hold any
// mix of Local and RemoteShard values — the seam is the Shard interface,
// and this client implements the full protocol: broadcast ObserveBatch
// (micro-batch as the atomic replication unit), the full-duplex
// bound-streaming Recommend exchange, /stats, health probes (shard.Pinger)
// and snapshot handoff (shard.SnapshotReceiver).
package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
)

// DefaultBoundFlush is the default sampling interval of the bound-raise
// streams (client→shard and shard→client). A raise is only transmitted
// when the sampled bound rose since the last send, so idle queries cost
// nothing; lowering the interval tightens cross-shard pruning at the cost
// of more tiny frames.
const DefaultBoundFlush = time.Millisecond

// statsTimeout bounds the context-less Stats() snapshot call.
const statsTimeout = 5 * time.Second

// Client is a remote shard: the client half of the shard RPC protocol,
// implementing shard.Shard (plus shard.Pinger and shard.SnapshotReceiver)
// over unencrypted HTTP/2 so one TCP connection multiplexes the broadcast
// write path, concurrent scatter queries and their bound streams.
type Client struct {
	idx  int
	of   int
	base string
	hc   *http.Client

	// BoundFlush overrides DefaultBoundFlush when > 0. Set before first
	// use; not synchronised.
	BoundFlush time.Duration
	// AuthToken, when non-empty, is sent as "Authorization: Bearer" on
	// every request — the shared bearer-token layer of a shardd fleet
	// started with -auth-token. Set before first use; not synchronised.
	AuthToken string
	// DisableMuxScatter forces the one-HTTP/2-stream-per-item recommend
	// exchange instead of the multiplexed query stream — the pre-mux wire
	// behavior, kept for measurement (ssrec-bench -scatter item) and
	// debugging. Set before first use; not synchronised.
	DisableMuxScatter bool

	// muxMu guards the lazily-dialed multiplexed query stream.
	muxMu sync.Mutex
	mux   *muxStream
	noMux bool // server lacks the endpoint; fell back permanently
}

// NewClient connects shard idx of an of-wide deployment at addr
// ("host:port" or a full http:// URL). No I/O happens here — connections
// are dialed lazily per request, and health is the Router's Probe concern.
func NewClient(addr string, idx, of int) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	p := new(http.Protocols)
	p.SetHTTP2(true)
	p.SetUnencryptedHTTP2(true) // h2c with prior knowledge for http:// shardd addrs
	// The transport must FAIL when a shard blackholes (partition, frozen
	// host) rather than hang: the Router's broadcast legs run detached
	// from caller cancellation (replication atomicity), so an unbounded
	// stall would pin writers forever instead of triggering failover.
	// Dialing is bounded; established connections are health-checked with
	// HTTP/2 pings after 15s of silence and torn down when a ping (or any
	// pending write) gets no response — every in-flight call then fails,
	// wraps ErrShardUnavailable, and the Router excludes the shard.
	dialer := &net.Dialer{Timeout: 10 * time.Second, KeepAlive: 15 * time.Second}
	return &Client{
		idx:  idx,
		of:   of,
		base: strings.TrimRight(addr, "/"),
		hc: &http.Client{Transport: &http.Transport{
			Protocols:           p,
			DialContext:         dialer.DialContext,
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
			HTTP2: &http.HTTP2Config{
				SendPingTimeout:  15 * time.Second,
				PingTimeout:      10 * time.Second,
				WriteByteTimeout: 30 * time.Second,
			},
		}},
	}
}

// Addr reports the normalised base URL of the remote shard.
func (c *Client) Addr() string { return c.base }

// SplitAddrs parses a comma-separated shardd address list (the -shard-
// addrs / -remote-shards flag syntax), trimming whitespace and dropping
// empty segments. Order is shard-index order: out[i] serves shard i.
func SplitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// DialRouter assembles a scatter-gather Router over remote shards, one
// Client per address in shard-index order — the single construction path
// shared by ssrec.Open(WithRemoteShards), ssrec-server -shard-addrs and
// ssrec-bench -remote-shards. No I/O happens here (connections dial
// lazily); boot or re-seed the fleet with Router.HandoffSnapshot, or
// start each shardd with -model.
func DialRouter(addrs []string) (*shard.Router, error) {
	return DialRouterAuth(addrs, "")
}

// DialRouterAuth is DialRouter with a shared bearer token: every shard
// client authenticates as "Authorization: Bearer <token>" against shardds
// started with the matching -auth-token. An empty token dials without
// authentication.
func DialRouterAuth(addrs []string, token string) (*shard.Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shardrpc: no shard addresses")
	}
	shards := make([]shard.Shard, len(addrs))
	for i, a := range addrs {
		c := NewClient(a, i, len(addrs))
		c.AuthToken = token
		shards[i] = c
	}
	return shard.NewRouter(shards...)
}

// Index implements shard.Shard.
func (c *Client) Index() int { return c.idx }

// Close tears down the multiplexed query stream and releases idle
// connections.
func (c *Client) Close() {
	c.muxMu.Lock()
	if c.mux != nil {
		c.mux.close()
		c.mux = nil
	}
	c.muxMu.Unlock()
	c.hc.CloseIdleConnections()
}

// authorize stamps the bearer token, if configured.
func (c *Client) authorize(req *http.Request) {
	if c.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.AuthToken)
	}
}

func (c *Client) boundFlush() time.Duration {
	if c.BoundFlush > 0 {
		return c.BoundFlush
	}
	return DefaultBoundFlush
}

// transportErr classifies a failed exchange: context cancellation stays a
// context error (the Router must not exclude a shard because the CALLER
// gave up); everything else is wrapped in shard.ErrShardUnavailable so the
// Router's failover can key on it.
func (c *Client) transportErr(ctx context.Context, op string, err error) error {
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return unavailable(c.idx, op, err)
}

// do runs one JSON exchange. out may be nil for 204-style responses.
func (c *Client) do(ctx context.Context, op, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("shardrpc: encode %s: %w", op, err)
		}
		body = bytes.NewReader(raw)
	}
	method := http.MethodPost
	if in == nil {
		method = http.MethodGet
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("shardrpc: %s: %w", op, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if hv := telemetry.HeaderValue(ctx); hv != "" {
		req.Header.Set(telemetry.TraceHeader, hv)
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.transportErr(ctx, op, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return c.statusErr(ctx, op, resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return c.transportErr(ctx, op, err)
	}
	return nil
}

// statusErr turns a non-2xx response into an error: 5xx means the shard
// cannot serve (unavailable — it may be awaiting a snapshot handoff), 4xx
// is a protocol bug and is reported as-is.
func (c *Client) statusErr(ctx context.Context, op string, resp *http.Response) error {
	var eb errorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
	msg := eb.Error
	if msg == "" {
		msg = resp.Status
	}
	if resp.StatusCode >= 500 {
		return c.transportErr(ctx, op, fmt.Errorf("status %d: %s", resp.StatusCode, msg))
	}
	return fmt.Errorf("shardrpc: shard %d %s: status %d: %s", c.idx, op, resp.StatusCode, msg)
}

// RegisterItems implements shard.Shard: the deterministic batch prologue,
// broadcast before a query batch. changed round-trips the shard's "did
// the replicated dictionaries advance" report.
func (c *Client) RegisterItems(ctx context.Context, items []model.Item) (bool, error) {
	w := registerWire{Items: make([]itemWire, len(items))}
	for i, v := range items {
		w.Items[i] = toItemWire(v)
	}
	var resp registerRespWire
	if err := c.do(ctx, "register", pathRegister, w, &resp); err != nil {
		return false, err
	}
	return resp.Changed, nil
}

// observeRespWire is the response of POST /shard/v1/observe.
type observeRespWire struct {
	reportWire
	Error *errWire `json:"error,omitempty"`
}

// ObserveBatch implements shard.Shard: ships one micro-batch (the atomic
// replication unit) and returns the shard's BatchReport with sentinel
// error identities restored.
func (c *Client) ObserveBatch(ctx context.Context, batch []core.Observation) (core.BatchReport, error) {
	w := observeWire{Observations: make([]obsWire, len(batch))}
	for i, o := range batch {
		w.Observations[i] = obsWire{UserID: o.UserID, Item: toItemWire(o.Item), Timestamp: o.Timestamp}
	}
	var resp observeRespWire
	if err := c.do(ctx, "observe", pathObserve, w, &resp); err != nil {
		return core.BatchReport{}, err
	}
	return resp.report(), decodeErr(resp.Error)
}

// Recommend implements shard.Shard: the full-duplex scatter leg. The
// request body starts with the query envelope and then streams the
// router-side bound (raised by the other shards) as NDJSON raise lines;
// the response streams the shard's own raises back and terminates with
// the result line. Raises are folded with Bound.Raise on both ends —
// a monotone max — so a delayed, duplicated or lost raise only costs
// pruning opportunity, never exactness; even with NO raises delivered the
// shard's owned-users top-k is exact and the merged global result is
// bit-identical.
func (c *Client) Recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	// Preferred path: multiplex the query over the shard's long-lived
	// query stream (one stream per shard, not per item — see
	// querystream.go). Shardds without the endpoint fall back to the
	// per-item exchange below, permanently.
	if !c.DisableMuxScatter {
		ms, err := c.muxStream()
		switch {
		case err == nil:
			return ms.recommend(ctx, v, o, b)
		case !errors.Is(err, errNoMux):
			// Already classified by dialMux (unavailable / status error);
			// only caller cancellation overrides it.
			if ctx != nil && ctx.Err() != nil {
				return core.Result{ItemID: v.ID}, ctx.Err()
			}
			return core.Result{ItemID: v.ID}, err
		}
	}
	sctx, span := telemetry.StartSpan(ctx, "rpc.recommend")
	span.SetAttr("shard", strconv.Itoa(c.idx))
	defer span.End()
	env := recommendEnvelope{Item: toItemWire(v), Options: toOptionsWire(o), Stream: b != nil,
		Trace: telemetry.HeaderValue(sctx)}
	last := math.Inf(-1)
	if b != nil {
		if lb := b.Load(); !math.IsInf(lb, -1) {
			env.Bound = &lb
			last = lb
		}
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+pathRecommend, pr)
	if err != nil {
		return core.Result{ItemID: v.ID}, fmt.Errorf("shardrpc: recommend: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	c.authorize(req)

	// Writer side: the envelope, then (while streaming) periodic raises of
	// the router-side bound. The pump exits when the exchange finishes
	// (done closed → pipe closed) or the pipe breaks under it.
	done := make(chan struct{})
	go func() {
		enc := json.NewEncoder(pw)
		if err := enc.Encode(env); err != nil {
			pw.CloseWithError(err)
			return
		}
		if !env.Stream {
			pw.Close()
			return
		}
		t := time.NewTicker(c.boundFlush())
		defer t.Stop()
		for {
			select {
			case <-done:
				pw.Close()
				return
			case <-t.C:
				if lb := b.Load(); lb > last && !math.IsInf(lb, 1) {
					last = lb
					if err := enc.Encode(recLine{B: &lb}); err != nil {
						return // pipe closed by the exchange ending
					}
				}
			}
		}
	}()
	defer close(done)

	resp, err := c.hc.Do(req)
	if err != nil {
		return core.Result{ItemID: v.ID}, c.transportErr(ctx, "recommend", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return core.Result{ItemID: v.ID}, c.statusErr(ctx, "recommend", resp)
	}

	// Reader side: fold raises until the terminal result line.
	dec := json.NewDecoder(resp.Body)
	for {
		var line recLine
		if err := dec.Decode(&line); err != nil {
			return core.Result{ItemID: v.ID}, c.transportErr(ctx, "recommend", fmt.Errorf("stream ended without result: %w", err))
		}
		switch {
		case line.B != nil:
			if b != nil {
				b.Raise(*line.B)
			}
		case line.Result != nil:
			telemetry.ImportSpans(sctx, line.Spans)
			return line.Result.result(), decodeErr(line.Err)
		case line.Err != nil:
			telemetry.ImportSpans(sctx, line.Spans)
			return core.Result{ItemID: v.ID}, decodeErr(line.Err)
		}
	}
}

// Stats implements shard.Shard. A transport failure reports zero-valued
// stats (Trained=false) — the Router's readiness and ops surfaces treat
// that as "unreachable".
func (c *Client) Stats() shard.Stats {
	ctx, cancel := context.WithTimeout(context.Background(), statsTimeout)
	defer cancel()
	var w statsWire
	if err := c.do(ctx, "stats", pathStats, nil, &w); err != nil {
		return shard.Stats{Shard: c.idx}
	}
	return w.stats()
}

// Ping implements shard.Pinger: nil only when the shard is reachable,
// reports the expected identity AND is trained (ready to serve). A
// restarted-but-blank shardd therefore stays excluded until a snapshot
// handoff boots it. The probe keys on /readyz (a blank shard answers 503
// there, which statusErr classifies unavailable). The returned epoch is
// the shard's boot-epoch token (minted per snapshot boot), which the
// Router uses to refuse re-including a shard that kept running
// pre-exclusion state.
func (c *Client) Ping(ctx context.Context) (string, error) {
	var h healthWire
	if err := c.do(ctx, "readyz", pathReadyz, nil, &h); err != nil {
		return "", err
	}
	if h.Shard != c.idx || h.Of != c.of {
		return "", fmt.Errorf("shardrpc: shard at %s identifies as %d/%d, want %d/%d",
			c.base, h.Shard, h.Of, c.idx, c.of)
	}
	if !h.Trained {
		return "", unavailable(c.idx, "readyz", fmt.Errorf("shard is not trained (awaiting snapshot handoff)"))
	}
	return h.BootEpoch, nil
}

// Handoff implements shard.SnapshotReceiver: ships a trained-engine
// snapshot (core.SaveTo bytes); the shardd reboots from it via
// core.LoadShardFrom, materialising only its owned leaf partition.
func (c *Client) Handoff(ctx context.Context, snapshot []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+pathSnapshot, bytes.NewReader(snapshot))
	if err != nil {
		return fmt.Errorf("shardrpc: snapshot: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(headerShardIndex, strconv.Itoa(c.idx))
	req.Header.Set(headerShardCount, strconv.Itoa(c.of))
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.transportErr(ctx, "snapshot", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return c.statusErr(ctx, "snapshot", resp)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for connection reuse
	return nil
}

// Snapshot implements shard.SnapshotProvider: downloads the shard's full
// engine snapshot (GET /shard/v1/snapshot) — the source end of the
// supervisor's auto-reseed. Any trained shard's snapshot can seed any
// replica of any slot: it carries the complete replicated state, and the
// receiver rebuilds its own leaf partition on load.
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+pathSnapshot, nil)
	if err != nil {
		return nil, fmt.Errorf("shardrpc: snapshot export: %w", err)
	}
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.transportErr(ctx, "snapshot export", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, c.statusErr(ctx, "snapshot export", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, c.transportErr(ctx, "snapshot export", err)
	}
	return data, nil
}

// DialReplicaRouter is DialReplicaRouterAuth without authentication.
func DialReplicaRouter(addrs []string, replicas int) (*shard.Router, error) {
	return DialReplicaRouterAuth(addrs, replicas, "")
}

// DialReplicaRouterAuth assembles a replica-aware Router over remote
// shards: the address list is SLOT-MAJOR — with n = len(addrs)/replicas
// slots, addrs[i*replicas : (i+1)*replicas] are the replicas of slot i,
// every one dialed with shard identity (i, n) and grouped in a
// shard.ReplicaSet. replicas <= 1 degrades to the plain DialRouterAuth
// wiring (no set wrapper).
func DialReplicaRouterAuth(addrs []string, replicas int, token string) (*shard.Router, error) {
	if replicas <= 1 {
		return DialRouterAuth(addrs, token)
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shardrpc: no shard addresses")
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("shardrpc: %d addresses do not divide into replica sets of %d", len(addrs), replicas)
	}
	n := len(addrs) / replicas
	sets := make([]shard.Shard, n)
	for i := 0; i < n; i++ {
		members := make([]shard.Shard, replicas)
		for j := 0; j < replicas; j++ {
			c := NewClient(addrs[i*replicas+j], i, n)
			c.AuthToken = token
			members[j] = c
		}
		rs, err := shard.NewReplicaSet(i, members...)
		if err != nil {
			return nil, err
		}
		sets[i] = rs
	}
	return shard.NewRouter(sets...)
}

// Replay implements shard.Replayer: streams just the write batches a
// stale shard missed (POST /shard/v1/replay) — the supervisor's cheap
// alternative to a full snapshot handoff when the debt is small. The
// shard applies the batches in order and mints a fresh boot epoch, so
// the next Ping shows the proof-of-reseed the fail-closed probe rules
// require.
func (c *Client) Replay(ctx context.Context, batches []shard.ReplayBatch) error {
	req := replayWire{}
	for _, b := range batches {
		if len(b.Items) > 0 {
			rw := &registerWire{Items: make([]itemWire, len(b.Items))}
			for i, it := range b.Items {
				rw.Items[i] = toItemWire(it)
			}
			req.Batches = append(req.Batches, replayBatchWire{Seq: b.Seq, Register: rw})
		}
		if len(b.Obs) > 0 {
			ow := &observeWire{Observations: make([]obsWire, len(b.Obs))}
			for i, o := range b.Obs {
				ow.Observations[i] = obsWire{UserID: o.UserID, Item: toItemWire(o.Item), Timestamp: o.Timestamp}
			}
			req.Batches = append(req.Batches, replayBatchWire{Seq: b.Seq, Observe: ow})
		}
	}
	var resp replayRespWire
	return c.do(ctx, "replay", pathReplay, req, &resp)
}

// PrepareReshard implements shard.ReshardPreparer: stages the successor
// partition table on the shardd (POST /shard/v1/reshard) so the snapshot
// handoff that follows boots slot `slot` via core.LoadPartitionFrom —
// the control half of resharding onto remote members (Router.Reshard
// with shardrpc clients for freshly started shardd processes).
func (c *Client) PrepareReshard(ctx context.Context, slot int, p model.Partition) error {
	w := reshardWire{Slot: slot, Partition: toPartitionWire(p)}
	var resp reshardRespWire
	return c.do(ctx, "reshard", pathReshard, w, &resp)
}

// Compile-time interface checks.
var (
	_ shard.Shard            = (*Client)(nil)
	_ shard.Pinger           = (*Client)(nil)
	_ shard.SnapshotReceiver = (*Client)(nil)
	_ shard.SnapshotProvider = (*Client)(nil)
	_ shard.Replayer         = (*Client)(nil)
	_ shard.ReshardPreparer  = (*Client)(nil)
)
