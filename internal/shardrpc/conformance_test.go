// conformance_test.go is the REMOTE column of the stream-replay
// conformance matrix: the same seeded 11.5k-interaction workload the
// in-process suite (internal/shard) replays is driven through loopback
// shardd endpoints — real TCP, real HTTP/2, the full bound-streaming
// protocol — and must be bit-identical to the single reference engine:
//
//	transport   = remote (2 shardd endpoints)
//	shards      ∈ {2}
//	parallelism ∈ {1, 4}   (via the per-call core.WithParallelism option)
//	plus one mixed cell: shard 0 in-process, shard 1 remote
//
// By default the suite serves the shards from in-process loopback
// listeners (self-contained, no processes to manage). Setting
// SSREC_SHARD_ADDRS=host:port,host:port points it at EXTERNAL shardd
// processes instead — the CI workflow runs it that way against two real
// `ssrec-shardd` daemons. Either way every cell (re)boots its shards from
// the shared fixture snapshot via the handoff endpoint, so state never
// leaks between cells.
package shardrpc

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/shard"
	"ssrec/internal/shardtest"
)

// conformanceAddrs resolves the two shard endpoints: external daemons
// from SSREC_SHARD_ADDRS, or fresh in-process loopback servers.
func conformanceAddrs(t *testing.T, n int) []string {
	if env := os.Getenv("SSREC_SHARD_ADDRS"); env != "" {
		addrs := SplitAddrs(env)
		if len(addrs) != n {
			t.Fatalf("SSREC_SHARD_ADDRS has %d endpoints, need %d", len(addrs), n)
		}
		t.Logf("using external shardd endpoints %v", addrs)
		return addrs
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = startLoopback(t, i, n).addr
	}
	return addrs
}

// remoteRouter dials the endpoints and boots every shard from the
// snapshot via the handoff protocol.
func remoteRouter(t *testing.T, addrs []string, snapshot []byte) *shard.Router {
	t.Helper()
	shards := make([]shard.Shard, len(addrs))
	for i, addr := range addrs {
		c := NewClient(addr, i, len(addrs))
		t.Cleanup(c.Close)
		shards[i] = c
	}
	r, err := shard.NewRouter(shards...)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	if err := r.HandoffSnapshot(context.Background(), snapshot); err != nil {
		t.Fatalf("snapshot handoff: %v", err)
	}
	return r
}

// TestConformanceRemoteStreamReplay is the network-transport acceptance
// gate: a 2-shard remote deployment replays the full seeded stream over
// loopback HTTP/2 and must be observably equivalent — identical ranked
// results, per-item errors and ingest reports — to the single engine, at
// intra-shard parallelism 1 and 4.
func TestConformanceRemoteStreamReplay(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 0 // full stream
	parallelisms := []int{1, 4}
	if testing.Short() {
		maxBatches = 12
		parallelisms = []int{1}
	}
	const n = 2
	addrs := conformanceAddrs(t, n)

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)
	t.Logf("reference transcript: %d micro-batches, %d interactions, %d queries",
		len(want.Reports), len(fx.Obs), len(want.Results)*shardtest.ReplayQueryLen)

	for _, p := range parallelisms {
		t.Run(fmt.Sprintf("remote/shards=%d/parallelism=%d", n, p), func(t *testing.T) {
			r := remoteRouter(t, addrs, fx.Snapshot) // handoff = per-cell state reset
			got := fx.Replay(t, r, maxBatches, core.WithParallelism(p))
			shardtest.Diff(t, want, got, fmt.Sprintf("remote shards=%d p=%d", n, p))
			if down := r.Down(); len(down) != 0 {
				t.Fatalf("shards excluded during a healthy replay: %v", down)
			}
		})
	}
}

// TestConformanceRemoteSessionReplay is the remote column of the SESSION
// conformance matrix: the stream replayed as interleaved session traffic
// (Push per observation, Ask per query) through a Session over a 2-shard
// REMOTE router — every ask one multiplexed exchange over the per-shard
// query streams — must be bit-identical to the batch API driven at the
// same boundaries on the single engine.
func TestConformanceRemoteSessionReplay(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 0 // full stream
	if testing.Short() {
		maxBatches = 10
	}
	const n = 2
	addrs := conformanceAddrs(t, n)

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.ReplaySeq(t, reference, maxBatches)

	r := remoteRouter(t, addrs, fx.Snapshot)
	ses := core.NewSession(context.Background(), r, core.WithSessionBatch(shardtest.ReplayBatch))
	got := fx.ReplaySession(t, ses, maxBatches)
	shardtest.DiffResults(t, want, got, "session/remote shards=2")
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("shards excluded during a healthy session replay: %v", down)
	}
}

// TestConformanceMixedLocalRemote proves the Router drives a MIX of
// in-process and remote shards transparently: shard 0 is a local engine,
// shard 1 a loopback shardd, and the pair still replays bit-identically
// to the single engine (a shortened schedule keeps the cell cheap — the
// full-stream remote cells above and in-process cells in internal/shard
// cover the long haul).
func TestConformanceMixedLocalRemote(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 24
	if testing.Short() {
		maxBatches = 8
	}
	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	eng0, err := core.LoadShardFrom(bytes.NewReader(fx.Snapshot), 0, 2)
	if err != nil {
		t.Fatalf("boot local shard: %v", err)
	}
	lb := startLoopback(t, 1, 2)
	c1 := NewClient(lb.addr, 1, 2)
	t.Cleanup(c1.Close)
	if err := c1.Handoff(context.Background(), fx.Snapshot); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	r, err := shard.NewRouter(shard.NewLocal(0, eng0), c1)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	got := fx.Replay(t, r, maxBatches)
	shardtest.Diff(t, want, got, "mixed local/remote")
}
