// wire.go defines the NDJSON/JSON wire format of the shard RPC protocol —
// the exact shapes both the RemoteShard client and the shardd server
// encode — plus the error-code mapping that carries the engine's sentinel
// errors across the wire without losing errors.Is identity.
//
// Every numeric score and bound crosses the wire as a JSON float64;
// encoding/json emits the shortest representation that round-trips the
// bit pattern exactly (strconv shortest-float), so remote results stay
// bit-identical to in-process ones. ±Inf is not representable in JSON —
// the protocol omits the bound field until it is finite (a fresh
// sigtree.Bound starts at -Inf, which means "nothing to prune yet" and
// never needs to be transmitted).
package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
	"ssrec/internal/wal"
)

// Endpoint paths of the shard RPC protocol (all rooted under /shard/v1).
// pathHealth is a deprecated alias of pathReadyz's information at
// always-200 status — probes should use pathLivez (process up) or
// pathReadyz (booted AND trained, i.e. safe to serve) instead.
const (
	pathHealth      = "/shard/v1/health"
	pathLivez       = "/shard/v1/livez"
	pathReadyz      = "/shard/v1/readyz"
	pathStats       = "/shard/v1/stats"
	pathRegister    = "/shard/v1/register"
	pathObserve     = "/shard/v1/observe"
	pathRecommend   = "/shard/v1/recommend"
	pathQueryStream = "/shard/v1/query_stream"
	pathSnapshot    = "/shard/v1/snapshot"
	pathReplay      = "/shard/v1/replay"
	pathReshard     = "/shard/v1/reshard"
)

// Identity headers of the snapshot handoff: the pushing router asserts
// which shard it believes it is talking to, and the server refuses a
// mismatch instead of silently rebuilding the wrong leaf partition.
const (
	headerShardIndex = "X-Ssrec-Shard-Index"
	headerShardCount = "X-Ssrec-Shard-Count"
)

// itemWire is the wire form of model.Item.
type itemWire struct {
	ID          string   `json:"id"`
	Category    string   `json:"category"`
	Producer    string   `json:"producer,omitempty"`
	Entities    []string `json:"entities,omitempty"`
	Description string   `json:"description,omitempty"`
	Timestamp   int64    `json:"timestamp,omitempty"`
}

func toItemWire(v model.Item) itemWire {
	return itemWire{ID: v.ID, Category: v.Category, Producer: v.Producer,
		Entities: v.Entities, Description: v.Description, Timestamp: v.Timestamp}
}

func (w itemWire) model() model.Item {
	return model.Item{ID: w.ID, Category: w.Category, Producer: w.Producer,
		Entities: w.Entities, Description: w.Description, Timestamp: w.Timestamp}
}

// registerWire is the body of POST /shard/v1/register.
type registerWire struct {
	Items []itemWire `json:"items"`
}

// registerRespWire is the response of POST /shard/v1/register: whether
// the batch advanced the replicated dictionaries (any unseen item).
type registerRespWire struct {
	Changed bool `json:"changed"`
}

// obsWire is one observation of a replicated micro-batch.
type obsWire struct {
	UserID    string   `json:"user_id"`
	Item      itemWire `json:"item"`
	Timestamp int64    `json:"timestamp,omitempty"`
}

// observeWire is the body of POST /shard/v1/observe: one micro-batch, the
// atomic replication unit.
type observeWire struct {
	Observations []obsWire `json:"observations"`
}

// replayBatchWire is one missed write of a delta catch-up replay:
// exactly one of Register / Observe is set, tagged with the replica
// set's write sequence.
type replayBatchWire struct {
	Seq      uint64        `json:"seq"`
	Register *registerWire `json:"register,omitempty"`
	Observe  *observeWire  `json:"observe,omitempty"`
}

// replayWire is the body of POST /shard/v1/replay: the missed batches
// in sequence order.
type replayWire struct {
	Batches []replayBatchWire `json:"batches"`
}

// replayRespWire is the replay response: how many batches applied and
// the fresh boot epoch the shard minted, which the supervisor records
// as the proof-of-reseed the fail-closed probe rules require.
type replayRespWire struct {
	Applied   int    `json:"applied"`
	BootEpoch string `json:"boot_epoch,omitempty"`
}

// partitionWire is the wire form of model.Partition — the versioned
// user→shard ownership table an online reshard installs.
type partitionWire struct {
	Epoch  uint64 `json:"epoch"`
	Shards int    `json:"shards"`
	Blocks int    `json:"blocks"`
	Owners []int  `json:"owners"`
}

func toPartitionWire(p model.Partition) partitionWire {
	return partitionWire{Epoch: p.Epoch, Shards: p.Shards, Blocks: p.Blocks,
		Owners: append([]int(nil), p.Owners...)}
}

func (w partitionWire) model() model.Partition {
	return model.Partition{Epoch: w.Epoch, Shards: w.Shards, Blocks: w.Blocks,
		Owners: append([]int(nil), w.Owners...)}
}

// reshardWire is the body of POST /shard/v1/reshard: the control half of
// the online split/merge protocol. It stages the successor partition
// table on the shard — the NEXT snapshot handoff then boots via
// core.LoadPartitionFrom with this table instead of the legacy modular
// rule.
type reshardWire struct {
	Slot      int           `json:"slot"`
	Partition partitionWire `json:"partition"`
}

// reshardRespWire acknowledges a staged reshard.
type reshardRespWire struct {
	Staged bool `json:"staged"`
}

// decodeReshardRequest parses and validates a /shard/v1/reshard body:
// strict JSON (unknown fields refused — a malformed control message must
// never silently stage a wrong table), a structurally valid partition
// table, and a slot inside it. It is the fuzzed attack surface of the
// resharding control plane (FuzzDecodeReshardRequest).
func decodeReshardRequest(data []byte) (int, model.Partition, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w reshardWire
	if err := dec.Decode(&w); err != nil {
		return 0, model.Partition{}, fmt.Errorf("shardrpc: reshard request: %w", err)
	}
	if dec.More() {
		return 0, model.Partition{}, fmt.Errorf("shardrpc: reshard request: trailing data")
	}
	p := w.Partition.model()
	if err := p.Validate(); err != nil {
		return 0, model.Partition{}, fmt.Errorf("shardrpc: reshard request: %w", err)
	}
	if w.Slot < 0 || w.Slot >= p.Shards {
		return 0, model.Partition{}, fmt.Errorf("shardrpc: reshard request: slot %d out of range [0,%d)", w.Slot, p.Shards)
	}
	return w.Slot, p, nil
}

// obsErrWire is one rejected batch entry of a BatchReport.
type obsErrWire struct {
	Index int      `json:"index"`
	Error *errWire `json:"error"`
}

// reportWire is the response of POST /shard/v1/observe.
type reportWire struct {
	Applied  int          `json:"applied"`
	Rejected int          `json:"rejected"`
	Flushed  int          `json:"flushed"`
	Errors   []obsErrWire `json:"errors,omitempty"`
}

func toReportWire(rep core.BatchReport) reportWire {
	w := reportWire{Applied: rep.Applied, Rejected: rep.Rejected, Flushed: rep.Flushed}
	for _, oe := range rep.Errors {
		w.Errors = append(w.Errors, obsErrWire{Index: oe.Index, Error: encodeErr(oe.Err)})
	}
	return w
}

func (w reportWire) report() core.BatchReport {
	rep := core.BatchReport{Applied: w.Applied, Rejected: w.Rejected, Flushed: w.Flushed}
	for _, oe := range w.Errors {
		rep.Errors = append(rep.Errors, core.ObservationError{Index: oe.Index, Err: decodeErr(oe.Error)})
	}
	return rep
}

// optionsWire is the wire form of core.QueryOptions (already resolved by
// the router — defaults applied, no functional options cross the wire).
type optionsWire struct {
	K           int  `json:"k"`
	Parallelism int  `json:"parallelism,omitempty"`
	NoExpansion bool `json:"no_expansion,omitempty"`
}

func toOptionsWire(o core.QueryOptions) optionsWire {
	return optionsWire{K: o.K, Parallelism: o.Parallelism, NoExpansion: o.NoExpansion}
}

func (w optionsWire) options() core.QueryOptions {
	return core.QueryOptions{K: w.K, Parallelism: w.Parallelism, NoExpansion: w.NoExpansion}
}

// recommendEnvelope is the FIRST NDJSON line of a POST /shard/v1/recommend
// request body. When Stream is true the client keeps the request body open
// and follows with boundLine raises (the router-side view of the shared
// bound, fed by the other shards), and the server interleaves its own
// boundLine raises into the response before the terminal resultLine.
type recommendEnvelope struct {
	Item    itemWire    `json:"item"`
	Options optionsWire `json:"options"`
	// Bound is the shared bound's value at scatter time, omitted while
	// -Inf (nothing published yet).
	Bound *float64 `json:"bound,omitempty"`
	// Stream requests the full-duplex bound protocol.
	Stream bool `json:"stream,omitempty"`
	// Trace carries the caller's trace context ("<trace>-<span>", the
	// X-Ssrec-Trace header form); empty when the request is untraced, so
	// the wire stays byte-identical with telemetry off.
	Trace string `json:"trace,omitempty"`
}

// recLine is one NDJSON line of the recommend exchange AFTER the envelope
// — in either direction. Exactly one field is set per line:
//
//   - B: a monotone raise of the shared lower bound (drift-tolerant — the
//     receiver folds it with Bound.Raise, so delayed, duplicated or
//     reordered deliveries only cost pruning, never correctness);
//   - Result (+ optionally Err): the terminal server line carrying the
//     shard's exact owned-users top-k and the per-call error, if any;
//   - Err alone: the terminal server line of a failed call.
type recLine struct {
	B      *float64    `json:"b,omitempty"`
	Result *resultWire `json:"result,omitempty"`
	Err    *errWire    `json:"error,omitempty"`
	// Spans returns the shard-side spans of a traced call on the
	// terminal line; absent when the call was untraced.
	Spans []telemetry.SpanData `json:"spans,omitempty"`
}

// qsAsk starts one query on a multiplexed query stream (POST
// /shard/v1/query_stream): the per-item payload of the former one-stream-
// per-item exchange, tagged with the stream-scoped query id carried by the
// enclosing qsLine.
type qsAsk struct {
	Item    itemWire    `json:"item"`
	Options optionsWire `json:"options"`
	// Bound is the shared bound's value at dispatch time, omitted while
	// -Inf.
	Bound *float64 `json:"bound,omitempty"`
	// Trace carries the caller's trace context for this query (the
	// stream is shared, so propagation is per-ask, not per-request).
	Trace string `json:"trace,omitempty"`
}

// qsLine is one NDJSON line of the multiplexed query-stream exchange, in
// either direction. ID scopes the line to one in-flight query; exactly one
// payload field is set:
//
//   - Ask (client→shard): start query ID;
//   - B: a monotone raise of query ID's shared bound (same drift-tolerant
//     Bound.Raise folding as the per-item exchange);
//   - Cancel (client→shard): abandon query ID (the shard cancels its
//     search; the client has already returned);
//   - Result/Err (shard→client): the terminal line of query ID.
type qsLine struct {
	ID     uint64      `json:"id"`
	Ask    *qsAsk      `json:"ask,omitempty"`
	B      *float64    `json:"b,omitempty"`
	Cancel bool        `json:"cancel,omitempty"`
	Result *resultWire `json:"result,omitempty"`
	Err    *errWire    `json:"error,omitempty"`
	// Spans returns the shard-side spans of a traced query on its
	// terminal line; absent when the ask was untraced.
	Spans []telemetry.SpanData `json:"spans,omitempty"`
}

// recWire is one ranked entry.
type recWire struct {
	UserID string  `json:"user_id"`
	Score  float64 `json:"score"`
}

// resultWire is the wire form of core.Result (minus Err, carried beside).
type resultWire struct {
	ItemID          string    `json:"item_id"`
	Recommendations []recWire `json:"recs,omitempty"`
	Stats           statsLine `json:"stats"`
}

// statsLine is the wire form of sigtree.SearchStats.
type statsLine struct {
	NodesVisited   int `json:"nodes,omitempty"`
	EntriesScored  int `json:"scored,omitempty"`
	EntriesSkipped int `json:"skipped,omitempty"`
	Partitions     int `json:"partitions,omitempty"`
}

func toResultWire(res core.Result) *resultWire {
	w := &resultWire{ItemID: res.ItemID, Stats: statsLine{
		NodesVisited:   res.Stats.NodesVisited,
		EntriesScored:  res.Stats.EntriesScored,
		EntriesSkipped: res.Stats.EntriesSkipped,
		Partitions:     res.Stats.Partitions,
	}}
	for _, rec := range res.Recommendations {
		w.Recommendations = append(w.Recommendations, recWire{UserID: rec.UserID, Score: rec.Score})
	}
	return w
}

func (w *resultWire) result() core.Result {
	res := core.Result{ItemID: w.ItemID, Stats: sigtree.SearchStats{
		NodesVisited:   w.Stats.NodesVisited,
		EntriesScored:  w.Stats.EntriesScored,
		EntriesSkipped: w.Stats.EntriesSkipped,
		Partitions:     w.Stats.Partitions,
	}}
	for _, rec := range w.Recommendations {
		res.Recommendations = append(res.Recommendations, model.Recommendation{UserID: rec.UserID, Score: rec.Score})
	}
	return res
}

// healthWire is the response of GET /shard/v1/health. BootEpoch is an
// opaque token minted at every engine boot (startup -model load or
// snapshot handoff): the Router compares epochs across probes to tell a
// RE-SEEDED shard (safe to re-include) from one that kept running stale
// state while it was excluded and missed replicated writes (not safe).
type healthWire struct {
	Shard     int    `json:"shard"`
	Of        int    `json:"of"`
	Trained   bool   `json:"trained"`
	BootEpoch string `json:"boot_epoch,omitempty"`
}

// statsWire is the wire form of shard.Stats.
type statsWire struct {
	Shard       int  `json:"shard"`
	Trained     bool `json:"trained"`
	Users       int  `json:"users"`
	OwnedUsers  int  `json:"owned_users"`
	Leaves      int  `json:"leaves"`
	Blocks      int  `json:"blocks"`
	Trees       int  `json:"trees"`
	HashKeys    int  `json:"hash_keys"`
	Parallelism int  `json:"parallelism"`
	// RefreshErrors counts failed index refreshes on the shard's engine.
	RefreshErrors int64         `json:"refresh_errors,omitempty"`
	WAL           *walStatsWire `json:"wal,omitempty"`
}

// walStatsWire is the wire form of wal.Stats: the shard's durable
// ingest log, absent when the shard runs without one.
type walStatsWire struct {
	Dir             string  `json:"dir"`
	Policy          string  `json:"fsync_policy"`
	Segments        int     `json:"segments"`
	Bytes           int64   `json:"bytes"`
	LastSeq         uint64  `json:"last_seq"`
	CheckpointSeq   uint64  `json:"checkpoint_seq"`
	HasCheckpoint   bool    `json:"has_checkpoint"`
	CheckpointAgeMs float64 `json:"checkpoint_age_ms"`
	Appends         uint64  `json:"appends"`
	Syncs           uint64  `json:"syncs"`
	Checkpoints     uint64  `json:"checkpoints"`
}

func toWALStatsWire(st *wal.Stats) *walStatsWire {
	if st == nil {
		return nil
	}
	return &walStatsWire{
		Dir:             st.Dir,
		Policy:          string(st.Policy),
		Segments:        st.Segments,
		Bytes:           st.Bytes,
		LastSeq:         st.LastSeq,
		CheckpointSeq:   st.CheckpointSeq,
		HasCheckpoint:   st.HasCheckpoint,
		CheckpointAgeMs: float64(st.CheckpointAge) / float64(time.Millisecond),
		Appends:         st.Appends,
		Syncs:           st.Syncs,
		Checkpoints:     st.Checkpoints,
	}
}

func (w *walStatsWire) stats() *wal.Stats {
	if w == nil {
		return nil
	}
	return &wal.Stats{
		Dir:           w.Dir,
		Policy:        wal.Policy(w.Policy),
		Segments:      w.Segments,
		Bytes:         w.Bytes,
		LastSeq:       w.LastSeq,
		CheckpointSeq: w.CheckpointSeq,
		HasCheckpoint: w.HasCheckpoint,
		CheckpointAge: time.Duration(w.CheckpointAgeMs * float64(time.Millisecond)),
		Appends:       w.Appends,
		Syncs:         w.Syncs,
		Checkpoints:   w.Checkpoints,
	}
}

func toStatsWire(st shard.Stats) statsWire {
	return statsWire{Shard: st.Shard, Trained: st.Trained, Users: st.Users,
		OwnedUsers: st.OwnedUsers, Leaves: st.Leaves, Blocks: st.Blocks,
		Trees: st.Trees, HashKeys: st.HashKeys, Parallelism: st.Parallelism,
		RefreshErrors: st.RefreshErrors, WAL: toWALStatsWire(st.WAL)}
}

func (w statsWire) stats() shard.Stats {
	return shard.Stats{Shard: w.Shard, Trained: w.Trained, Users: w.Users,
		OwnedUsers: w.OwnedUsers, Leaves: w.Leaves, Blocks: w.Blocks,
		Trees: w.Trees, HashKeys: w.HashKeys, Parallelism: w.Parallelism,
		RefreshErrors: w.RefreshErrors, WAL: w.WAL.stats()}
}

// ---- error transport ----

// errWire carries one error across the wire: a stable code preserving the
// sentinel identity plus the full message.
type errWire struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable wire codes for the sentinel errors both sides know.
const (
	codeNotTrained  = "not_trained"
	codeUnknownCat  = "unknown_category"
	codeInvalidObs  = "invalid_observation"
	codeCancelled   = "cancelled"
	codeDeadline    = "deadline_exceeded"
	codeUnavailable = "unavailable"
	codeInternal    = "internal"
)

func encodeErr(err error) *errWire {
	if err == nil {
		return nil
	}
	w := &errWire{Code: codeInternal, Message: err.Error()}
	switch {
	case errors.Is(err, core.ErrNotTrained):
		w.Code = codeNotTrained
	case errors.Is(err, core.ErrUnknownCategory):
		w.Code = codeUnknownCat
	case errors.Is(err, core.ErrInvalidObservation):
		w.Code = codeInvalidObs
	case errors.Is(err, context.Canceled):
		w.Code = codeCancelled
	case errors.Is(err, context.DeadlineExceeded):
		w.Code = codeDeadline
	case errors.Is(err, shard.ErrShardUnavailable):
		w.Code = codeUnavailable
	}
	return w
}

// remoteError restores a decoded error: Error() reproduces the original
// message verbatim, Unwrap() restores the sentinel so errors.Is keeps
// working across the process boundary.
type remoteError struct {
	msg  string
	base error
}

func (e *remoteError) Error() string { return e.msg }
func (e *remoteError) Unwrap() error { return e.base }

func decodeErr(w *errWire) error {
	if w == nil {
		return nil
	}
	var base error
	switch w.Code {
	case codeNotTrained:
		base = core.ErrNotTrained
	case codeUnknownCat:
		base = core.ErrUnknownCategory
	case codeInvalidObs:
		base = core.ErrInvalidObservation
	case codeCancelled:
		base = context.Canceled
	case codeDeadline:
		base = context.DeadlineExceeded
	case codeUnavailable:
		base = shard.ErrShardUnavailable
	default:
		return errors.New(w.Message)
	}
	if w.Message == base.Error() {
		return base
	}
	return &remoteError{msg: w.Message, base: base}
}

// errorBody is the JSON body of a non-2xx status.
type errorBody struct {
	Error string `json:"error"`
}

// traceRespWire is the GET /shard/v1/trace/{id} body: the spans this
// shard retained for one distributed trace.
type traceRespWire struct {
	TraceID string               `json:"trace_id"`
	Spans   []telemetry.SpanData `json:"spans"`
}

// unavailable wraps a transport-level failure of shard idx in the typed
// sentinel the Router's failover keys on.
func unavailable(idx int, op string, err error) error {
	return fmt.Errorf("shardrpc: shard %d %s: %w: %w", idx, op, shard.ErrShardUnavailable, err)
}
