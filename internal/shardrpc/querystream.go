// querystream.go is the batched scatter leg of the shard RPC protocol:
// instead of one HTTP/2 stream per item (POST /shard/v1/recommend), a
// router-side client opens ONE long-lived full-duplex exchange per shard
// (POST /shard/v1/query_stream) and multiplexes every concurrent
// recommend over it with stream-scoped query ids — asks, per-query bound
// raises (both directions), cancels and terminal results all travel as
// tagged NDJSON lines on the same stream.
//
// The bound protocol per query is unchanged from the per-item exchange
// (monotone Bound.Raise folding, drift-tolerant by construction), so the
// results stay bit-identical — the remote conformance suite now runs on
// this path by default. What changes is the per-item overhead: a batch of
// B items against S shards costs S streams instead of B×S, and a Session
// issuing thousands of sequential asks reuses the same S streams for its
// whole lifetime. BENCH_PR5.json records the before/after.
package shardrpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
)

// ---- server side ----

// qsQuery is one in-flight query of a multiplexed stream, on the shard
// side.
type qsQuery struct {
	b      *sigtree.Bound
	cancel context.CancelFunc
	last   float64 // last bound value published to the client (under qmu)
}

// handleQueryStream serves the multiplexed exchange: it reads tagged
// lines off the request body (asks start concurrent searches, raises fold
// into the addressed query's bound, cancels abort it), publishes each
// active query's bound raises on a single sampling ticker, and writes one
// terminal result line per query. The exchange ends when the client
// half-closes its request stream and every in-flight search has answered.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	// Admission check only — the stream must NOT capture the engine: a
	// query stream outlives snapshot handoffs (the connection survives a
	// blip the router recovers from with a re-seed), and serving asks
	// from a pre-handoff engine would silently return stale rankings.
	// Each ask resolves the currently-booted shard below.
	if s.serving(w) == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() //nolint:errcheck // no-op on HTTP/2
	w.WriteHeader(http.StatusOK)
	rc.Flush() //nolint:errcheck // commit headers so the client's open returns

	var wmu sync.Mutex // serialises response lines
	enc := json.NewEncoder(w)
	write := func(line qsLine) {
		wmu.Lock()
		enc.Encode(line) //nolint:errcheck // stream best-effort; the client detects loss as EOF
		rc.Flush()       //nolint:errcheck
		wmu.Unlock()
	}

	var qmu sync.Mutex
	active := make(map[uint64]*qsQuery)

	stop := make(chan struct{})
	var pump sync.WaitGroup
	pump.Add(1)
	go func() {
		// ONE raise sampler for the whole stream (the per-item exchange
		// pays one ticker per query): every boundFlush interval, publish
		// each active query's bound if it rose since last sent.
		defer pump.Done()
		t := time.NewTicker(s.boundFlush())
		defer t.Stop()
		var raises []qsLine
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				raises = raises[:0]
				qmu.Lock()
				for id, q := range active {
					if v := q.b.Load(); v > q.last && !math.IsInf(v, 1) {
						q.last = v
						lb := v
						raises = append(raises, qsLine{ID: id, B: &lb})
					}
				}
				qmu.Unlock()
				for _, ln := range raises {
					write(ln)
				}
			}
		}
	}()

	var inflight sync.WaitGroup
	dec := json.NewDecoder(r.Body)
	for {
		var line qsLine
		if err := dec.Decode(&line); err != nil {
			break // EOF (client done asking) or broken stream
		}
		switch {
		case line.Ask != nil:
			b := sigtree.NewBound()
			last := math.Inf(-1)
			if line.Ask.Bound != nil {
				b.Raise(*line.Ask.Bound)
				last = *line.Ask.Bound
			}
			qctx, cancel := context.WithCancel(r.Context())
			// Resume the caller's trace when the ask carries one: the
			// shard-side spans are collected and shipped back on the
			// terminal line, so the router's trace covers both processes.
			var coll *telemetry.Collector
			var sp *telemetry.Span
			if line.Ask.Trace != "" {
				qctx, coll = s.tracer.Resume(qctx, line.Ask.Trace)
				qctx, sp = telemetry.StartSpan(qctx, "shardd.recommend")
				sp.SetAttr("shard", strconv.Itoa(s.idx))
			}
			q := &qsQuery{b: b, cancel: cancel, last: last}
			qmu.Lock()
			active[line.ID] = q
			qmu.Unlock()
			inflight.Add(1)
			go func(id uint64, ask qsAsk) {
				defer inflight.Done()
				defer cancel()
				var res core.Result
				var rerr error
				if bs := s.boot.Load(); bs != nil {
					res, rerr = bs.local.Recommend(qctx, ask.Item.model(), ask.Options.options(), b)
				} else {
					res = core.Result{ItemID: ask.Item.ID}
					rerr = fmt.Errorf("shard %d/%d not booted (awaiting snapshot handoff): %w",
						s.idx, s.of, shard.ErrShardUnavailable)
				}
				// Retire the query, then flush its final bound (the search
				// just published its exact k-th score) before the terminal
				// line, mirroring the per-item exchange.
				qmu.Lock()
				delete(active, id)
				final := b.Load()
				flushFinal := final > q.last && !math.IsInf(final, 1)
				qmu.Unlock()
				if flushFinal {
					write(qsLine{ID: id, B: &final})
				}
				sp.SetAttr("item", ask.Item.ID)
				sp.End()
				write(qsLine{ID: id, Result: toResultWire(res), Err: encodeErr(rerr), Spans: coll.Take()})
			}(line.ID, *line.Ask)
		case line.B != nil:
			qmu.Lock()
			if q := active[line.ID]; q != nil {
				q.b.Raise(*line.B)
			}
			qmu.Unlock()
		case line.Cancel:
			qmu.Lock()
			q := active[line.ID]
			qmu.Unlock()
			if q != nil {
				q.cancel()
			}
		}
	}
	inflight.Wait()
	close(stop)
	pump.Wait()
}

// ---- client side ----

// errNoMux reports a shardd without the query-stream endpoint (an older
// build): the client falls back to the one-stream-per-item exchange
// permanently.
var errNoMux = errors.New("shardrpc: query stream unsupported")

// muxResp is one terminal answer delivered to a waiting Recommend call.
// spans carries the shard-side trace spans off the terminal line (the
// reader goroutine has no per-query context to import them into).
type muxResp struct {
	res   core.Result
	err   error
	spans []telemetry.SpanData
}

// muxQuery is one in-flight query of a multiplexed stream, on the client
// side: the router's shared bound for the item, the last value relayed to
// this shard, and the waiter channel.
type muxQuery struct {
	b    *sigtree.Bound
	last float64
	ch   chan muxResp
}

// muxStream is one open query-stream exchange: all of a Client's
// concurrent Recommend calls multiplex over it. A transport failure fails
// every in-flight call (each wraps shard.ErrShardUnavailable, so the
// Router's failover engages once) and the next call dials a fresh stream.
type muxStream struct {
	c      *Client
	pw     *io.PipeWriter
	cancel context.CancelFunc // aborts the underlying request
	enc    *json.Encoder
	wmu    sync.Mutex // serialises request lines

	mu     sync.Mutex
	nextID uint64
	act    map[uint64]*muxQuery
	err    error
	broken bool

	done chan struct{} // closed when the reader exits (stream dead)
	stop chan struct{} // stops the raise pump
}

// muxStream returns the client's open stream, dialing one if needed.
// errNoMux means the server does not speak the protocol (fall back).
func (c *Client) muxStream() (*muxStream, error) {
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	if c.noMux {
		return nil, errNoMux
	}
	if c.mux != nil {
		select {
		case <-c.mux.done:
			c.mux = nil // broken; dial fresh below
		default:
			return c.mux, nil
		}
	}
	ms, err := c.dialMux()
	if err != nil {
		if errors.Is(err, errNoMux) {
			c.noMux = true
		}
		return nil, err
	}
	c.mux = ms
	return ms, nil
}

// dialMux opens one query-stream exchange. The stream outlives any single
// call, so the request runs under its own cancellable background context;
// liveness is the transport's concern (bounded dial + HTTP/2 keepalive
// pings tear down a black-holed stream, which fails every in-flight call
// into the Router's failover).
func (c *Client) dialMux() (*muxStream, error) {
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+pathQueryStream, pr)
	if err != nil {
		cancel()
		return nil, unavailable(c.idx, "query_stream", err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, unavailable(c.idx, "query_stream", err)
	}
	if resp.StatusCode == http.StatusNotFound || resp.StatusCode == http.StatusMethodNotAllowed {
		resp.Body.Close()
		cancel()
		return nil, errNoMux
	}
	if resp.StatusCode/100 != 2 {
		err := c.statusErr(nil, "query_stream", resp)
		resp.Body.Close()
		cancel()
		return nil, err
	}
	ms := &muxStream{
		c:      c,
		pw:     pw,
		cancel: cancel,
		enc:    json.NewEncoder(pw),
		act:    make(map[uint64]*muxQuery),
		done:   make(chan struct{}),
		stop:   make(chan struct{}),
	}
	go ms.read(resp.Body)
	go ms.pump()
	return ms, nil
}

// write sends one request line; a pipe failure marks the stream broken.
func (ms *muxStream) write(line qsLine) error {
	ms.wmu.Lock()
	err := ms.enc.Encode(line)
	ms.wmu.Unlock()
	if err != nil {
		ms.fail(err)
	}
	return err
}

// fail marks the stream broken and fails every in-flight call.
func (ms *muxStream) fail(err error) {
	ms.mu.Lock()
	if ms.broken {
		ms.mu.Unlock()
		return
	}
	ms.broken = true
	ms.err = err
	waiters := ms.act
	ms.act = make(map[uint64]*muxQuery)
	ms.mu.Unlock()
	ms.pw.CloseWithError(err)
	ms.cancel()
	close(ms.stop)
	for _, q := range waiters {
		q.ch <- muxResp{err: err}
	}
}

// read dispatches response lines: raises fold into the addressed query's
// shared bound, terminals wake the waiting call. A decode failure (server
// gone, stream reset) fails the stream.
func (ms *muxStream) read(body io.ReadCloser) {
	defer close(ms.done)
	defer body.Close()
	dec := json.NewDecoder(body)
	for {
		var line qsLine
		if err := dec.Decode(&line); err != nil {
			ms.fail(err)
			return
		}
		switch {
		case line.B != nil:
			ms.mu.Lock()
			q := ms.act[line.ID]
			ms.mu.Unlock()
			if q != nil && q.b != nil {
				q.b.Raise(*line.B)
			}
		case line.Result != nil || line.Err != nil:
			ms.mu.Lock()
			q := ms.act[line.ID]
			delete(ms.act, line.ID)
			ms.mu.Unlock()
			if q == nil {
				continue // cancelled locally; late terminal is discarded
			}
			var resp muxResp
			if line.Result != nil {
				resp.res = line.Result.result()
			}
			resp.err = decodeErr(line.Err)
			resp.spans = line.Spans
			q.ch <- resp
		}
	}
}

// pump relays router-side bound raises (published by sibling shards) to
// this shard, one sampling ticker for every in-flight query.
func (ms *muxStream) pump() {
	t := time.NewTicker(ms.c.boundFlush())
	defer t.Stop()
	var raises []qsLine
	for {
		select {
		case <-ms.stop:
			return
		case <-t.C:
			raises = raises[:0]
			ms.mu.Lock()
			for id, q := range ms.act {
				if q.b == nil {
					continue
				}
				if v := q.b.Load(); v > q.last && !math.IsInf(v, 1) {
					q.last = v
					lb := v
					raises = append(raises, qsLine{ID: id, B: &lb})
				}
			}
			ms.mu.Unlock()
			for _, ln := range raises {
				if ms.write(ln) != nil {
					return
				}
			}
		}
	}
}

// recommend runs one query over the multiplexed stream: ask line out,
// raises in both directions while the search runs, terminal line back.
func (ms *muxStream) recommend(ctx context.Context, v model.Item, o core.QueryOptions, b *sigtree.Bound) (core.Result, error) {
	sctx, span := telemetry.StartSpan(ctx, "rpc.recommend")
	span.SetAttr("shard", strconv.Itoa(ms.c.idx))
	defer span.End()
	q := &muxQuery{b: b, last: math.Inf(-1), ch: make(chan muxResp, 1)}
	ask := &qsAsk{Item: toItemWire(v), Options: toOptionsWire(o), Trace: telemetry.HeaderValue(sctx)}
	if b != nil {
		if lb := b.Load(); !math.IsInf(lb, -1) {
			ask.Bound = &lb
			q.last = lb
		}
	}
	ms.mu.Lock()
	if ms.broken {
		err := ms.err
		ms.mu.Unlock()
		return core.Result{ItemID: v.ID}, ms.c.transportErr(ctx, "recommend", err)
	}
	ms.nextID++
	id := ms.nextID
	ms.act[id] = q
	ms.mu.Unlock()

	if err := ms.write(qsLine{ID: id, Ask: ask}); err != nil {
		// fail() already swept the registration into the waiter channel.
		return core.Result{ItemID: v.ID}, ms.c.transportErr(ctx, "recommend", err)
	}
	select {
	case r := <-q.ch:
		telemetry.ImportSpans(sctx, r.spans)
		if r.res.ItemID == "" {
			r.res.ItemID = v.ID
		}
		if r.err != nil {
			ms.mu.Lock()
			broken := ms.broken
			ms.mu.Unlock()
			if broken {
				// A transport failure, not a shard-reported error: wrap it
				// so the Router's failover keys on ErrShardUnavailable.
				return r.res, ms.c.transportErr(ctx, "recommend", r.err)
			}
		}
		return r.res, r.err
	case <-ctx.Done():
		// Abandon the query: unregister so the late terminal is discarded
		// and tell the shard to stop searching.
		ms.mu.Lock()
		delete(ms.act, id)
		ms.mu.Unlock()
		ms.write(qsLine{ID: id, Cancel: true}) //nolint:errcheck // best-effort
		return core.Result{ItemID: v.ID}, ctx.Err()
	}
}

// Close tears the stream down (idle-connection hygiene on Client.Close).
func (ms *muxStream) close() {
	ms.fail(errors.New("shardrpc: query stream closed"))
}
