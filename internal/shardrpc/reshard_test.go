// reshard_test.go is the REMOTE column of the online-resharding gate
// plus the fuzz target for its control-plane decoder. The conformance
// test replays the shared seeded stream through a deployment that starts
// as ONE in-process shard, splits LIVE onto two shardd endpoints (real
// TCP, real HTTP/2 — the PrepareReshard + snapshot-handoff + mirrored
// catch-up protocol end to end) and later merges back in-process, and
// the transcript must stay bit-identical to the single reference engine.
// Setting SSREC_RESHARD_LOG writes a migration transcript artifact; the
// CI resharding-conformance job runs this against two real ssrec-shardd
// processes via SSREC_SHARD_ADDRS and uploads it.
package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/shardtest"
)

// TestRemoteReshardSplitMerge splits a live single-shard deployment onto
// two (possibly external) shardd endpoints mid-stream, merges back to
// one in-process shard a few batches later, and requires the full replay
// bit-identical to the static reference.
func TestRemoteReshardSplitMerge(t *testing.T) {
	fx := shardtest.Load(t)
	maxBatches := 0
	totalBatches := (len(fx.Obs) + shardtest.ReplayBatch - 1) / shardtest.ReplayBatch
	joinAfter := 6
	if testing.Short() {
		maxBatches = 16
		totalBatches = 16
		joinAfter = 3
	}

	reference, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot reference: %v", err)
	}
	want := fx.Replay(t, reference, maxBatches)

	// The deployment under test starts as one in-process shard.
	eng, err := core.LoadFrom(bytes.NewReader(fx.Snapshot))
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
	r, err := shard.NewRouter(shard.NewLocal(0, eng))
	if err != nil {
		t.Fatalf("router: %v", err)
	}

	// The split targets: two shardd endpoints with the FINAL identity
	// (i of 2) — external daemons via SSREC_SHARD_ADDRS or in-process
	// loopback servers. Whatever state they hold is replaced by the
	// reshard's snapshot handoff.
	addrs := conformanceAddrs(t, 2)
	members := make([]shard.Shard, 2)
	for i, addr := range addrs {
		c := NewClient(addr, i, 2)
		t.Cleanup(c.Close)
		members[i] = c
	}

	rng := rand.New(rand.NewSource(41))
	splitAt := 1 + rng.Intn(totalBatches/3)
	splitJoin := splitAt + joinAfter
	mergeAt := splitJoin + 1 + rng.Intn(totalBatches/3)
	mergeJoin := mergeAt + joinAfter
	if mergeJoin >= totalBatches {
		t.Fatalf("schedule overflow: mergeJoin %d of %d batches", mergeJoin, totalBatches)
	}
	t.Logf("splitting 1→2 onto %v before batch %d (join %d), merging 2→1 in-process before batch %d (join %d), of %d batches",
		addrs, splitAt, splitJoin, mergeAt, mergeJoin, totalBatches)

	var transcript []string
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		transcript = append(transcript, line)
		t.Log(line)
	}
	logf("schedule split=%d splitJoin=%d merge=%d mergeJoin=%d total=%d addrs=%s",
		splitAt, splitJoin, mergeAt, mergeJoin, totalBatches, strings.Join(addrs, ","))

	ctx := context.Background()
	var splitErr, mergeErr error
	splitDone := make(chan struct{})
	mergeDone := make(chan struct{})
	hooks := map[int]func(int){
		splitAt: func(b int) {
			logf("batch=%d event=split-start to=2 transport=remote", b)
			go func() { defer close(splitDone); splitErr = r.Reshard(ctx, 2, members...) }()
		},
		splitJoin: func(b int) {
			<-splitDone
			if splitErr != nil {
				t.Fatalf("remote split: %v", splitErr)
			}
			if got := r.Shards(); got != 2 {
				t.Fatalf("post-split width %d, want 2", got)
			}
			st := r.ReshardStatus()
			logf("batch=%d event=split-done epoch=%d mirrored=%d migrating_blocks=%d",
				b, r.Partition().Epoch, st.MirroredBatches, st.MigratingBlocks)
		},
		mergeAt: func(b int) {
			logf("batch=%d event=merge-start to=1 transport=in-process", b)
			go func() { defer close(mergeDone); mergeErr = r.Reshard(ctx, 1) }()
		},
		mergeJoin: func(b int) {
			<-mergeDone
			if mergeErr != nil {
				t.Fatalf("merge: %v", mergeErr)
			}
			if got := r.Shards(); got != 1 {
				t.Fatalf("post-merge width %d, want 1", got)
			}
			st := r.ReshardStatus()
			logf("batch=%d event=merge-done epoch=%d mirrored=%d", b, r.Partition().Epoch, st.MirroredBatches)
		},
	}

	got := fx.ReplayWithHooks(t, r, shardtest.ReplayBatch, maxBatches, hooks)
	shardtest.Diff(t, want, got, "remote split + merge")

	if p := r.Partition(); p.Epoch != 2 || p.Shards != 1 {
		t.Fatalf("final partition %+v, want epoch 2 at 1 shard", p)
	}
	st := r.ReshardStatus()
	if st.Active || st.Phase != shard.ReshardPhaseDone || st.Completed != 2 {
		t.Fatalf("final reshard status %+v, want idle done with 2 completed", st)
	}
	logf("event=final completed=%d phase=%s identical=true", st.Completed, st.Phase)

	if path := os.Getenv("SSREC_RESHARD_LOG"); path != "" {
		if err := os.WriteFile(path, []byte(strings.Join(transcript, "\n")+"\n"), 0o644); err != nil {
			t.Fatalf("write reshard transcript: %v", err)
		}
		t.Logf("migration transcript written to %s", path)
	}
}

// TestReshardRPCStaging covers the control plane directly: staging a
// mismatched slot or width is refused with 409 and stages nothing, a
// matching stage answers {staged:true}, and the staged table makes the
// next handoff boot with the successor epoch's partition.
func TestReshardRPCStaging(t *testing.T) {
	fx := shardtest.Load(t)
	lb := startLoopback(t, 1, 2)
	c := NewClient(lb.addr, 1, 2)
	defer c.Close()
	ctx := context.Background()

	next := model.LegacyPartition(1).Next(2)
	// Wrong slot and wrong width are both identity conflicts.
	if err := c.PrepareReshard(ctx, 0, next); err == nil {
		t.Fatal("staging slot 0 on shard 1 succeeded, want refusal")
	}
	if err := (NewClient(lb.addr, 1, 2)).PrepareReshard(ctx, 1, model.LegacyPartition(1).Next(3)); err == nil {
		t.Fatal("staging a 3-wide table on a 2-wide shard succeeded, want refusal")
	}

	// A matching stage + handoff boots the successor partition: shard 1
	// of next owns exactly the users ShardOf assigns it.
	if err := c.PrepareReshard(ctx, 1, next); err != nil {
		t.Fatalf("stage: %v", err)
	}
	if err := c.Handoff(ctx, fx.Snapshot); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	ref, err := core.LoadPartitionFrom(bytes.NewReader(fx.Snapshot), 1, next)
	if err != nil {
		t.Fatalf("reference boot: %v", err)
	}
	wantStats, gotStats := shard.NewLocal(1, ref).Stats(), c.Stats()
	if gotStats.OwnedUsers != wantStats.OwnedUsers || gotStats.OwnedUsers == 0 {
		t.Fatalf("staged boot owns %d users, want %d (>0)", gotStats.OwnedUsers, wantStats.OwnedUsers)
	}

	// The stage was consumed: a plain handoff boots legacy again.
	if err := c.Handoff(ctx, fx.Snapshot); err != nil {
		t.Fatalf("second handoff: %v", err)
	}
	legacy, err := core.LoadShardFrom(bytes.NewReader(fx.Snapshot), 1, 2)
	if err != nil {
		t.Fatalf("legacy reference boot: %v", err)
	}
	wantStats, gotStats = shard.NewLocal(1, legacy).Stats(), c.Stats()
	if gotStats.OwnedUsers != wantStats.OwnedUsers {
		t.Fatalf("post-stage handoff owns %d users, want legacy %d", gotStats.OwnedUsers, wantStats.OwnedUsers)
	}
}

// FuzzDecodeReshardRequest fuzzes the resharding control-plane decoder.
// The seed corpus mirrors the malformed-partition table of the model
// package's validation tests (zero shards, missing owners, owner-count
// mismatch, out-of-range and negative owners) plus JSON-shape attacks.
// Invariants: no panic, and any accepted request yields a structurally
// valid table with the slot inside it.
func FuzzDecodeReshardRequest(f *testing.F) {
	valid, _ := encodeReshardBody(1, model.LegacyPartition(2).Next(4))
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":0,"blocks":1,"owners":[0]}}`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[]}}`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":2,"blocks":4,"owners":[0,1]}}`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[0,7]}}`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[0,-1]}}`))
	f.Add([]byte(`{"slot":-1,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[0,1]}}`))
	f.Add([]byte(`{"slot":9,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[0,1]}}`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[0,1]},"extra":true}`))
	f.Add([]byte(`{"slot":0,"partition":{"epoch":1,"shards":2,"blocks":2,"owners":[0,1]}}{"slot":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		slot, p, err := decodeReshardRequest(data)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted request decoded invalid partition %+v: %v", p, verr)
		}
		if slot < 0 || slot >= p.Shards {
			t.Fatalf("accepted request decoded slot %d outside [0,%d)", slot, p.Shards)
		}
	})
}

// encodeReshardBody builds a wire body the way the client does — kept as
// a helper so the fuzz seed stays in lockstep with the encoder.
func encodeReshardBody(slot int, p model.Partition) ([]byte, error) {
	return json.Marshal(reshardWire{Slot: slot, Partition: toPartitionWire(p)})
}
