// failover_test.go covers the Router's degraded-mode policy end to end
// over the real transport: a remote shard is killed mid-replay, and the
// test walks the full lifecycle the OPERATIONS.md runbook documents —
// typed ErrShardUnavailable partial results, exclusion (no further
// traffic to the dead endpoint), refusal to re-include a restarted-but-
// blank shardd, and recovery after a snapshot handoff.
package shardrpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/shard"
)

// countingHandler counts requests so exclusion ("the router stopped
// calling the dead shard") is observable.
type countingHandler struct {
	n atomic.Int64
	h http.Handler
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.n.Add(1)
	c.h.ServeHTTP(w, r)
}

func TestRouterFailoverLifecycle(t *testing.T) {
	snap := tinySnapshot(t)
	tc := buildTinyCorpus()
	ctx := context.Background()

	// Shard 0: plain loopback. Shard 1: counting handler on a pinned port
	// so it can be killed and restarted at the same address.
	lb0 := startLoopback(t, 0, 2)
	srv1, err := NewServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := ln1.Addr().String()
	counter := &countingHandler{h: srv1.Handler()}
	hs1 := srv1.NewHTTPServer(addr1)
	hs1.Handler = counter
	go hs1.Serve(ln1) //nolint:errcheck

	c0 := NewClient(lb0.addr, 0, 2)
	c1 := NewClient(addr1, 1, 2)
	defer c0.Close()
	defer c1.Close()
	r, err := shard.NewRouter(c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.HandoffSnapshot(ctx, snap); err != nil {
		t.Fatalf("handoff: %v", err)
	}

	// Healthy baseline: no error, both shards serving.
	healthy, err := r.RecommendCtx(ctx, tc.query, core.WithK(5))
	if err != nil {
		t.Fatalf("healthy recommend: %v", err)
	}
	if len(healthy.Recommendations) == 0 {
		t.Fatal("healthy deployment returned nothing")
	}

	// ---- kill shard 1 mid-stream ----
	hs1.Close()

	// The write path reports the typed degraded error: the batch landed on
	// the healthy shard but was NOT replicated everywhere.
	rep, err := r.ObserveBatch(ctx, []core.Observation{
		{UserID: "user1", Item: tc.items[7], Timestamp: 900},
	})
	if !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("observe after kill: err = %v, want ErrShardUnavailable", err)
	}
	if rep.Applied != 1 {
		t.Fatalf("healthy shard did not apply the batch: %+v", rep)
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{1}) {
		t.Fatalf("Down() = %v, want [1]", down)
	}

	// The read path serves partial results with the typed error: shard 0's
	// owned users are still ranked, shard 1's are missing.
	res, err := r.RecommendCtx(ctx, tc.query, core.WithK(5))
	if !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("degraded recommend: err = %v, want ErrShardUnavailable", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("degraded mode returned no partial results")
	}
	if len(res.Recommendations) >= len(healthy.Recommendations)+1 {
		t.Fatalf("degraded result has %d entries vs %d healthy — exclusion did not narrow the pool",
			len(res.Recommendations), len(healthy.Recommendations))
	}

	// Exclusion: further queries never touch the dead endpoint.
	before := counter.n.Load()
	for i := 0; i < 3; i++ {
		if _, err := r.RecommendCtx(ctx, tc.fresh[i], core.WithK(5)); !errors.Is(err, shard.ErrShardUnavailable) {
			t.Fatalf("excluded recommend %d: %v", i, err)
		}
	}
	if after := counter.n.Load(); after != before {
		t.Fatalf("router sent %d request(s) to an excluded shard", after-before)
	}

	// Probing a dead endpoint keeps it excluded.
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe re-included a dead shard: %v", up)
	}

	// ---- restart shardd at the same address, BLANK ----
	var ln1b net.Listener
	for i := 0; ; i++ {
		ln1b, err = net.Listen("tcp", addr1)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind %s: %v", addr1, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv1b, err := NewServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs1b := srv1b.NewHTTPServer(addr1)
	go hs1b.Serve(ln1b) //nolint:errcheck
	t.Cleanup(func() { hs1b.Close() })

	// A reachable-but-blank shard must NOT be re-included: it has missed
	// replicated batches and has no engine at all.
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe re-included a blank shard: %v", up)
	}
	if down := r.Down(); !reflect.DeepEqual(down, []int{1}) {
		t.Fatalf("Down() after blank restart = %v, want [1]", down)
	}

	// ---- recovery: re-seed via snapshot handoff, then probe ----
	if err := c1.Handoff(ctx, snap); err != nil {
		t.Fatalf("recovery handoff: %v", err)
	}
	if up := r.Probe(ctx); !reflect.DeepEqual(up, []int{1}) {
		t.Fatalf("Probe after handoff = %v, want [1]", up)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("Down() after recovery = %v, want empty", down)
	}
	res, err = r.RecommendCtx(ctx, tc.fresh[5], core.WithK(5))
	if err != nil {
		t.Fatalf("recovered recommend: %v", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("recovered deployment returned nothing")
	}
}

// TestRouterHandoffReincludes: Router.HandoffSnapshot alone (the
// operator's one-call recovery) re-seeds AND re-includes excluded remote
// shards.
func TestRouterHandoffReincludes(t *testing.T) {
	snap := tinySnapshot(t)
	tc := buildTinyCorpus()
	ctx := context.Background()

	lb0 := startLoopback(t, 0, 2)
	srv1, err := NewServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := ln1.Addr().String()
	hs1 := srv1.NewHTTPServer(addr1)
	go hs1.Serve(ln1) //nolint:errcheck

	c0 := NewClient(lb0.addr, 0, 2)
	c1 := NewClient(addr1, 1, 2)
	defer c0.Close()
	defer c1.Close()
	r, err := shard.NewRouter(c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.HandoffSnapshot(ctx, snap); err != nil {
		t.Fatalf("handoff: %v", err)
	}

	hs1.Close()
	if _, err := r.RecommendCtx(ctx, tc.query, core.WithK(3)); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("kill not detected: %v", err)
	}

	// Restart blank at the same address, then recover with ONE call.
	var ln1b net.Listener
	for i := 0; ; i++ {
		ln1b, err = net.Listen("tcp", addr1)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv1b, err := NewServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hs1b := srv1b.NewHTTPServer(addr1)
	go hs1b.Serve(ln1b) //nolint:errcheck
	t.Cleanup(func() { hs1b.Close() })

	if err := r.HandoffSnapshot(ctx, snap); err != nil {
		t.Fatalf("recovery HandoffSnapshot: %v", err)
	}
	if down := r.Down(); len(down) != 0 {
		t.Fatalf("Down() = %v after HandoffSnapshot", down)
	}
	if _, err := r.RecommendCtx(ctx, tc.fresh[0], core.WithK(3)); err != nil {
		t.Fatalf("recommend after recovery: %v", err)
	}

	// Sanity: the recovered deployment matches a fresh single engine on a
	// never-observed query (both booted from the same snapshot and the
	// degraded-window writes never landed anywhere... except shard 0).
	// Registration drift from the degraded window is expected — only
	// availability is asserted here; exactness is the conformance suite's
	// job on healthy deployments.
	eng, err := core.LoadFrom(bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Users() != r.Users() {
		t.Fatalf("user dictionaries diverged: %d vs %d", r.Users(), eng.Users())
	}
}
