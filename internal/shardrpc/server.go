// Package shardrpc is the network transport of the sharded CPPse-index:
// it carries the shard.Shard seam cut in the in-process sharding work
// over HTTP/2 + NDJSON, so a shard.Router can drive a mix of in-process
// and remote shards transparently.
//
// # Protocol
//
// One shardd process serves one shard of a deployment. All endpoints are
// rooted under /shard/v1 and speak JSON, except the recommend exchange
// (NDJSON, full-duplex) and the snapshot handoff (raw core.SaveTo bytes):
//
//	GET  /shard/v1/health     → {shard, of, trained, boot_epoch}
//	GET  /shard/v1/stats      → shard.Stats
//	POST /shard/v1/register   {items:[...]}            → {changed}
//	POST /shard/v1/observe    {observations:[...]}     → BatchReport
//	POST /shard/v1/recommend  NDJSON duplex (see below)
//	POST /shard/v1/snapshot   raw snapshot bytes       → 204
//
// # The bound-streaming recommend exchange
//
// The scatter leg of a query must share ONE lower bound across every
// shard to keep Algorithm 1's pruning global. Over the wire this becomes
// a full-duplex NDJSON exchange on a single HTTP/2 stream: the request
// body opens with the query envelope (item, resolved options, the shared
// bound's current value) and stays open, streaming `{"b":x}` raise lines
// whenever the ROUTER-side bound rises (i.e. another shard published a
// better k-th score); the response streams the SHARD-side raises back the
// same way and terminates with the `{"result":...}` line. Both ends fold
// incoming raises with sigtree.Bound.Raise — a lock-free monotone max —
// which makes the protocol drift-tolerant BY CONSTRUCTION: raises may be
// delayed, duplicated, reordered or dropped entirely and the search stays
// exact, because the bound only ever prunes entries strictly below the
// true global k-th score. A late raise costs pruning work, never results.
// That is the paper's Algorithm 1 lower-bound argument carried over the
// network unchanged; the stream-replay conformance suite
// (conformance_test.go here, sharing the internal/shardtest fixture)
// asserts remote deployments are bit-identical to the single engine.
//
// # Replication and recovery
//
// The write path (RegisterItems, ObserveBatch) is applied under a
// detached context once a request body has been fully received: the
// micro-batch is the atomic replication unit, and a client disconnect
// must not leave this shard half a batch behind its siblings. A shard
// that DID miss batches (crash, network partition — the Router excludes
// it on the first ErrShardUnavailable) rejoins by rebooting from a fresh
// snapshot handoff (POST /shard/v1/snapshot → core.LoadShardFrom), which
// restores the replicated dictionaries and rebuilds only its owned leaf
// partition. See OPERATIONS.md for the runbook.
package shardrpc

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
)

// Server is the shardd request handler: one engine shard behind the
// shard RPC protocol. A Server boots either from Boot (an engine loaded
// in-process, e.g. from a -model file) or over the wire via the snapshot
// handoff; until then every serving endpoint answers 503.
// bootState pairs an installed engine with the boot-epoch token minted
// for it. The pair is published atomically: a health probe must never
// observe a new epoch with the previous engine still serving (the Router
// would read that as "re-seeded" and re-include a stale shard), so the
// epoch and the engine travel in one pointer.
type bootState struct {
	local *shard.Local
	epoch string
}

type Server struct {
	idx, of int
	boot    atomic.Pointer[bootState]

	// Parallelism, when > 0, is applied to every engine booted by a
	// snapshot handoff (the shardd -partitions flag).
	Parallelism int
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>"
	// on EVERY endpoint (health included — the Router's prober carries the
	// token); mismatches answer 401. The shardd -auth-token flag. Set
	// before serving; not synchronised.
	AuthToken string
	// BoundFlush overrides DefaultBoundFlush for the raise stream when > 0.
	BoundFlush time.Duration
	// MaxBodyBytes bounds JSON request bodies (default 64 MiB).
	MaxBodyBytes int64
	// MaxSnapshotBytes bounds snapshot handoffs (default 1 GiB).
	MaxSnapshotBytes int64

	mux *http.ServeMux
}

// NewServer builds the handler for shard idx of an of-wide deployment.
func NewServer(idx, of int) (*Server, error) {
	if of < 1 {
		of = 1
	}
	if idx < 0 || idx >= of {
		return nil, fmt.Errorf("shardrpc: shard index %d out of range [0,%d)", idx, of)
	}
	s := &Server{
		idx:              idx,
		of:               of,
		MaxBodyBytes:     64 << 20,
		MaxSnapshotBytes: 1 << 30,
		mux:              http.NewServeMux(),
	}
	s.mux.HandleFunc("GET "+pathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+pathLivez, s.handleLivez)
	s.mux.HandleFunc("GET "+pathReadyz, s.handleReadyz)
	s.mux.HandleFunc("GET "+pathStats, s.handleStats)
	s.mux.HandleFunc("POST "+pathRegister, s.handleRegister)
	s.mux.HandleFunc("POST "+pathObserve, s.handleObserve)
	s.mux.HandleFunc("POST "+pathRecommend, s.handleRecommend)
	s.mux.HandleFunc("POST "+pathQueryStream, s.handleQueryStream)
	s.mux.HandleFunc("POST "+pathSnapshot, s.handleSnapshot)
	s.mux.HandleFunc("GET "+pathSnapshot, s.handleSnapshotExport)
	return s, nil
}

// Boot installs a loaded engine as this server's shard and mints a fresh
// boot epoch (published atomically with the engine). The engine must
// have been loaded with the matching shard identity (core.LoadShardFrom
// with the same idx/of) or built with Config.ShardIndex/ShardCount set.
func (s *Server) Boot(e *core.Engine) {
	if s.Parallelism > 0 {
		e.SetParallelism(s.Parallelism)
	}
	var nonce [8]byte
	rand.Read(nonce[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	s.boot.Store(&bootState{
		local: shard.NewLocal(s.idx, e),
		epoch: hex.EncodeToString(nonce[:]),
	})
}

// Booted reports whether an engine is installed.
func (s *Server) Booted() bool { return s.boot.Load() != nil }

// Handler returns the shard RPC handler (bearer-auth wrapped when
// AuthToken is set).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.authorized(r) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="ssrec-shard"`)
			s.httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// authorized checks the bearer token in constant time. An unset AuthToken
// leaves the server open (the pre-auth trusted-network mode).
func (s *Server) authorized(r *http.Request) bool {
	if s.AuthToken == "" {
		return true
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(tok), []byte(s.AuthToken)) == 1
}

// NewHTTPServer wraps the handler in an http.Server with unencrypted
// HTTP/2 enabled — REQUIRED for the full-duplex recommend exchange (the
// bound raise streams flow both ways on one stream; plain HTTP/1.1 cannot
// do that client-side). No read/write timeouts are set: recommend streams
// legitimately outlive any fixed budget, so deadlines belong to the
// caller's context. ReadHeaderTimeout still bounds header slow-loris.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		Protocols:         p,
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func (s *Server) boundFlush() time.Duration {
	if s.BoundFlush > 0 {
		return s.BoundFlush
	}
	return DefaultBoundFlush
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}

func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// serving returns the booted shard or answers 503 (the client maps 5xx to
// ErrShardUnavailable — an unbooted shard is indistinguishable from an
// unreachable one, and both are cured by a snapshot handoff).
func (s *Server) serving(w http.ResponseWriter) *shard.Local {
	b := s.boot.Load()
	if b == nil {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not booted (awaiting snapshot handoff)", s.idx, s.of)
		return nil
	}
	return b.local
}

// handleHealth is the deprecated always-200 health report; probes should
// use /livez (process up) or /readyz (ready to serve) instead.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+pathReadyz+">; rel=\"successor-version\"")
	s.writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleLivez answers 200 whenever the process serves HTTP at all — the
// restart-this-process signal. A blank shardd awaiting its snapshot
// handoff is alive (restarting it would not help), just not ready.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz answers 200 only when the shard is booted AND trained —
// safe to route traffic to; 503 otherwise (blank, awaiting handoff). The
// Router's probe path keys on this status.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.healthSnapshot()
	if !h.Trained {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not ready (awaiting snapshot handoff)", s.idx, s.of)
		return
	}
	s.writeJSON(w, http.StatusOK, h)
}

func (s *Server) healthSnapshot() healthWire {
	h := healthWire{Shard: s.idx, Of: s.of}
	if b := s.boot.Load(); b != nil {
		h.Trained = b.local.Engine().Trained()
		h.BootEpoch = b.epoch
	}
	return h
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	s.writeJSON(w, http.StatusOK, toStatsWire(l.Stats()))
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	var req registerWire
	if !s.decode(w, r, &req) {
		return
	}
	items := make([]model.Item, len(req.Items))
	for i, it := range req.Items {
		items[i] = it.model()
	}
	// Detached context: the batch arrived in full, so it is applied in
	// full — a disconnecting router must not leave this shard's producer
	// layer behind its siblings'.
	changed, err := l.RegisterItems(context.WithoutCancel(r.Context()), items)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "register: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, registerRespWire{Changed: changed})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	var req observeWire
	if !s.decode(w, r, &req) {
		return
	}
	batch := make([]core.Observation, len(req.Observations))
	for i, o := range req.Observations {
		batch[i] = core.Observation{UserID: o.UserID, Item: o.Item.model(), Timestamp: o.Timestamp}
	}
	// Detached for the same atomic-replication reason as handleRegister.
	rep, err := l.ObserveBatch(context.WithoutCancel(r.Context()), batch)
	s.writeJSON(w, http.StatusOK, observeRespWire{reportWire: toReportWire(rep), Error: encodeErr(err)})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	var env recommendEnvelope
	if err := dec.Decode(&env); err != nil {
		s.httpError(w, http.StatusBadRequest, "invalid envelope: %v", err)
		return
	}

	b := sigtree.NewBound()
	last := math.Inf(-1)
	if env.Bound != nil {
		b.Raise(*env.Bound)
		last = *env.Bound
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() //nolint:errcheck // no-op on HTTP/2, best-effort on HTTP/1
	w.WriteHeader(http.StatusOK)
	rc.Flush() //nolint:errcheck // commit headers so the client unblocks

	var mu sync.Mutex // serialises raise lines and the terminal line
	enc := json.NewEncoder(w)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var pumps sync.WaitGroup
	if env.Stream {
		// Inbound raises: the router relays other shards' k-th scores; fold
		// them into the local bound so this shard prunes globally. Exits
		// when the request body ends — the client half-closes its stream as
		// soon as it reads the terminal result line — and is joined before
		// ServeHTTP returns (reading r.Body after the handler exits is
		// outside the net/http contract).
		go func() {
			defer close(readerDone)
			for {
				var line recLine
				if err := dec.Decode(&line); err != nil {
					return
				}
				if line.B != nil {
					b.Raise(*line.B)
				}
			}
		}()
		// Outbound raises: sample the local bound and publish increases.
		pumps.Add(1)
		go func() {
			defer pumps.Done()
			t := time.NewTicker(s.boundFlush())
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if v := b.Load(); v > last && !math.IsInf(v, 1) {
						last = v
						mu.Lock()
						enc.Encode(recLine{B: &v}) //nolint:errcheck // stream best-effort
						rc.Flush()                 //nolint:errcheck
						mu.Unlock()
					}
				}
			}
		}()
	}

	res, rerr := l.Recommend(r.Context(), env.Item.model(), env.Options.options(), b)

	close(stop)
	pumps.Wait() // raise lines stop; the terminal line must be last
	mu.Lock()
	if env.Stream {
		// Final raise: the search just published its k-th exact score into
		// the local bound; flush it even if the sampling ticker never fired
		// (fast searches finish between ticks), so sibling shards still
		// running this query always see a finished shard's bound.
		if v := b.Load(); v > last && !math.IsInf(v, 1) {
			enc.Encode(recLine{B: &v}) //nolint:errcheck
		}
	}
	enc.Encode(recLine{Result: toResultWire(res), Err: encodeErr(rerr)}) //nolint:errcheck
	mu.Unlock()
	if env.Stream {
		// Join the inbound reader before ServeHTTP returns (reading r.Body
		// afterwards is outside the net/http contract): flush the terminal
		// line so the client sees it, reads it, and closes its request
		// stream, which ends the reader's Decode. A peer that never closes
		// gets its body closed from this side after a grace period, which
		// unblocks the pending read; the second wait is belt-and-braces for
		// transports where Close does not interrupt an in-flight Read.
		rc.Flush() //nolint:errcheck
		select {
		case <-readerDone:
		case <-time.After(time.Second):
			r.Body.Close() //nolint:errcheck // force the reader off the body
			select {
			case <-readerDone:
			case <-time.After(time.Second):
			}
		}
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Refuse a handoff addressed to a different shard identity — booting
	// the wrong leaf partition would silently break the deployment's
	// ownership partition.
	for header, want := range map[string]int{headerShardIndex: s.idx, headerShardCount: s.of} {
		if got := r.Header.Get(header); got != "" {
			if n, err := strconv.Atoi(got); err != nil || n != want {
				s.httpError(w, http.StatusConflict, "%s %q does not match this shard (%d/%d)", header, got, s.idx, s.of)
				return
			}
		}
	}
	e, err := core.LoadShardFrom(http.MaxBytesReader(w, r.Body, s.MaxSnapshotBytes), s.idx, s.of)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "snapshot: %v", err)
		return
	}
	s.Boot(e)
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshotExport streams the booted engine's full snapshot
// (core.SaveTo bytes) — the SOURCE end of the supervisor's auto-reseed:
// any healthy replica can seed any blank or stale one, because a shard
// snapshot carries the complete replicated state and the receiver
// rebuilds its own leaf partition on load.
func (s *Server) handleSnapshotExport(w http.ResponseWriter, _ *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	if !l.Engine().Trained() {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not trained; nothing to export", s.idx, s.of)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerShardIndex, strconv.Itoa(s.idx))
	w.Header().Set(headerShardCount, strconv.Itoa(s.of))
	l.Engine().SaveTo(w) //nolint:errcheck // response already committed; a broken stream fails the client's read
}
