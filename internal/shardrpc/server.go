// Package shardrpc is the network transport of the sharded CPPse-index:
// it carries the shard.Shard seam cut in the in-process sharding work
// over HTTP/2 + NDJSON, so a shard.Router can drive a mix of in-process
// and remote shards transparently.
//
// # Protocol
//
// One shardd process serves one shard of a deployment. All endpoints are
// rooted under /shard/v1 and speak JSON, except the recommend exchange
// (NDJSON, full-duplex) and the snapshot handoff (raw core.SaveTo bytes):
//
//	GET  /shard/v1/health     → {shard, of, trained, boot_epoch}
//	GET  /shard/v1/stats      → shard.Stats
//	POST /shard/v1/register   {items:[...]}            → {changed}
//	POST /shard/v1/observe    {observations:[...]}     → BatchReport
//	POST /shard/v1/recommend  NDJSON duplex (see below)
//	POST /shard/v1/snapshot   raw snapshot bytes       → 204
//	POST /shard/v1/replay     {batches:[...]}          → {applied, boot_epoch}
//
// # The bound-streaming recommend exchange
//
// The scatter leg of a query must share ONE lower bound across every
// shard to keep Algorithm 1's pruning global. Over the wire this becomes
// a full-duplex NDJSON exchange on a single HTTP/2 stream: the request
// body opens with the query envelope (item, resolved options, the shared
// bound's current value) and stays open, streaming `{"b":x}` raise lines
// whenever the ROUTER-side bound rises (i.e. another shard published a
// better k-th score); the response streams the SHARD-side raises back the
// same way and terminates with the `{"result":...}` line. Both ends fold
// incoming raises with sigtree.Bound.Raise — a lock-free monotone max —
// which makes the protocol drift-tolerant BY CONSTRUCTION: raises may be
// delayed, duplicated, reordered or dropped entirely and the search stays
// exact, because the bound only ever prunes entries strictly below the
// true global k-th score. A late raise costs pruning work, never results.
// That is the paper's Algorithm 1 lower-bound argument carried over the
// network unchanged; the stream-replay conformance suite
// (conformance_test.go here, sharing the internal/shardtest fixture)
// asserts remote deployments are bit-identical to the single engine.
//
// # Replication and recovery
//
// The write path (RegisterItems, ObserveBatch) is applied under a
// detached context once a request body has been fully received: the
// micro-batch is the atomic replication unit, and a client disconnect
// must not leave this shard half a batch behind its siblings. A shard
// that DID miss batches (crash, network partition — the Router excludes
// it on the first ErrShardUnavailable) rejoins by rebooting from a fresh
// snapshot handoff (POST /shard/v1/snapshot → core.LoadShardFrom), which
// restores the replicated dictionaries and rebuilds only its owned leaf
// partition. See OPERATIONS.md for the runbook.
package shardrpc

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"io"

	"ssrec/internal/core"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/sigtree"
	"ssrec/internal/telemetry"
	"ssrec/internal/wal"
)

// Server is the shardd request handler: one engine shard behind the
// shard RPC protocol. A Server boots either from Boot (an engine loaded
// in-process, e.g. from a -model file) or over the wire via the snapshot
// handoff; until then every serving endpoint answers 503.
// bootState pairs an installed engine with the boot-epoch token minted
// for it. The pair is published atomically: a health probe must never
// observe a new epoch with the previous engine still serving (the Router
// would read that as "re-seeded" and re-include a stale shard), so the
// epoch and the engine travel in one pointer.
type bootState struct {
	local *shard.Local
	epoch string
}

type Server struct {
	idx, of int
	boot    atomic.Pointer[bootState]

	// Parallelism, when > 0, is applied to every engine booted by a
	// snapshot handoff (the shardd -partitions flag).
	Parallelism int
	// AuthToken, when non-empty, requires "Authorization: Bearer <token>"
	// on EVERY endpoint (health included — the Router's prober carries the
	// token); mismatches answer 401. The shardd -auth-token flag. Set
	// before serving; not synchronised.
	AuthToken string
	// BoundFlush overrides DefaultBoundFlush for the raise stream when > 0.
	BoundFlush time.Duration
	// MaxBodyBytes bounds JSON request bodies (default 64 MiB).
	MaxBodyBytes int64
	// MaxSnapshotBytes bounds snapshot handoffs (default 1 GiB).
	MaxSnapshotBytes int64
	// WAL, when non-nil, is the shard's durable ingest log: every admitted
	// write batch is appended (and fsynced per the log's policy) BEFORE it
	// is applied, so an acknowledged batch is always recoverable — a shard
	// that cannot persist a batch refuses it with a 5xx, which the router
	// treats as a missed write. Set before serving; not synchronised.
	WAL *wal.Log
	// walMu serialises the append+apply critical section of every write
	// with CheckpointWAL, so a checkpoint's snapshot and its sequence
	// watermark always agree (no batch can land between the two).
	walMu sync.Mutex

	// reshardPending is the partition table staged by POST /shard/v1/
	// reshard: the next snapshot handoff consumes it and boots via
	// core.LoadPartitionFrom — the data half of the online split/merge
	// protocol. Nil outside a reshard seeding.
	reshardPending atomic.Pointer[model.Partition]

	// reg/tracer are the shard's telemetry surface: GET /metrics serves
	// the registry, and traces resumed off incoming asks (qsAsk.Trace,
	// recommendEnvelope.Trace, X-Ssrec-Trace on writes) are retained here
	// and fetchable via GET /shard/v1/trace/{id}.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer

	mux *http.ServeMux
}

// NewServer builds the handler for shard idx of an of-wide deployment.
func NewServer(idx, of int) (*Server, error) {
	if of < 1 {
		of = 1
	}
	if idx < 0 || idx >= of {
		return nil, fmt.Errorf("shardrpc: shard index %d out of range [0,%d)", idx, of)
	}
	s := &Server{
		idx:              idx,
		of:               of,
		MaxBodyBytes:     64 << 20,
		MaxSnapshotBytes: 1 << 30,
		reg:              telemetry.NewRegistry(),
		tracer:           telemetry.NewTracer(),
		mux:              http.NewServeMux(),
	}
	s.registerGauges()
	s.mux.Handle("GET /metrics", s.reg.Handler())
	s.mux.HandleFunc("GET /shard/v1/trace/{id}", s.handleTrace)
	s.mux.HandleFunc("GET "+pathHealth, s.handleHealth)
	s.mux.HandleFunc("GET "+pathLivez, s.handleLivez)
	s.mux.HandleFunc("GET "+pathReadyz, s.handleReadyz)
	s.mux.HandleFunc("GET "+pathStats, s.handleStats)
	s.mux.HandleFunc("POST "+pathRegister, s.handleRegister)
	s.mux.HandleFunc("POST "+pathObserve, s.handleObserve)
	s.mux.HandleFunc("POST "+pathRecommend, s.handleRecommend)
	s.mux.HandleFunc("POST "+pathQueryStream, s.handleQueryStream)
	s.mux.HandleFunc("POST "+pathSnapshot, s.handleSnapshot)
	s.mux.HandleFunc("GET "+pathSnapshot, s.handleSnapshotExport)
	s.mux.HandleFunc("POST "+pathReplay, s.handleReplay)
	s.mux.HandleFunc("POST "+pathReshard, s.handleReshard)
	return s, nil
}

// Boot installs a loaded engine as this server's shard and mints a fresh
// boot epoch (published atomically with the engine). The engine must
// have been loaded with the matching shard identity (core.LoadShardFrom
// with the same idx/of) or built with Config.ShardIndex/ShardCount set.
func (s *Server) Boot(e *core.Engine) {
	if s.Parallelism > 0 {
		e.SetParallelism(s.Parallelism)
	}
	s.boot.Store(&bootState{
		local: shard.NewLocal(s.idx, e),
		epoch: newEpoch(),
	})
}

func newEpoch() string {
	var nonce [8]byte
	rand.Read(nonce[:]) //nolint:errcheck // crypto/rand never fails on supported platforms
	return hex.EncodeToString(nonce[:])
}

// refreshEpoch mints a fresh boot epoch for the CURRENT engine — the
// proof-of-state-change a delta replay must publish so the fail-closed
// probe rules re-include the caught-up shard (and so a replay whose
// acknowledgement was lost still shows up as "state changed" on the
// next probe).
func (s *Server) refreshEpoch() string {
	b := s.boot.Load()
	if b == nil {
		return ""
	}
	nb := &bootState{local: b.local, epoch: newEpoch()}
	s.boot.Store(nb)
	return nb.epoch
}

// Booted reports whether an engine is installed.
func (s *Server) Booted() bool { return s.boot.Load() != nil }

// BootFromWAL recovers the shard from its attached WAL with zero manual
// steps: load the latest snapshot checkpoint, replay the delta tail
// (every record past the checkpoint sequence, in order), and boot.
// recovered is false — with no error — when the WAL holds no checkpoint
// yet (a genuinely blank shard: boot from -model or await a handoff).
// A WAL with records but no checkpoint is refused: there is no baseline
// to replay onto, and guessing one would silently diverge the replicas.
func (s *Server) BootFromWAL(ctx context.Context) (recovered bool, replayed int, err error) {
	if s.WAL == nil {
		return false, 0, fmt.Errorf("shardrpc: no WAL attached")
	}
	rc, seq, ok, err := s.WAL.LatestCheckpoint()
	if err != nil {
		return false, 0, err
	}
	if !ok {
		if st := s.WAL.Stats(); st.LastSeq > 0 {
			return false, 0, fmt.Errorf("shardrpc: wal holds %d records but no checkpoint; no baseline to replay onto", st.LastSeq)
		}
		return false, 0, nil
	}
	defer rc.Close()
	e, err := core.LoadShardFrom(rc, s.idx, s.of)
	if err != nil {
		return false, 0, fmt.Errorf("shardrpc: wal checkpoint: %w", err)
	}
	if err := s.WAL.Replay(seq+1, func(rec wal.Record) error {
		replayed++
		return wal.Apply(ctx, rec, e)
	}); err != nil {
		return false, replayed, err
	}
	s.Boot(e)
	return true, replayed, nil
}

// Metrics exposes the shard's telemetry registry (the GET /metrics
// surface) for embedders and tests.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Tracer exposes the shard's span store (the GET /shard/v1/trace/{id}
// surface) for embedders and tests.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// registerGauges wires scrape-time gauges over state other code already
// tracks — no double bookkeeping on any hot path.
func (s *Server) registerGauges() {
	s.reg.GaugeFunc("ssrec_shard_index", "Shard index of this process.",
		func() float64 { return float64(s.idx) })
	s.reg.GaugeFunc("ssrec_shard_of", "Shard count of the deployment.",
		func() float64 { return float64(s.of) })
	s.reg.GaugeFunc("ssrec_shard_trained", "1 when the shard is booted and trained, else 0.", func() float64 {
		if b := s.boot.Load(); b != nil && b.local.Engine().Trained() {
			return 1
		}
		return 0
	})
	s.reg.GaugeFunc("ssrec_shard_index_users", "Users indexed by the booted engine.", func() float64 {
		if b := s.boot.Load(); b != nil {
			return float64(b.local.Engine().Users())
		}
		return 0
	})
	s.reg.GaugeFunc("ssrec_shard_wal_last_seq", "Last appended WAL sequence number (0 without a WAL).", func() float64 {
		if s.WAL != nil {
			return float64(s.WAL.Stats().LastSeq)
		}
		return 0
	})
}

// handleTrace serves the spans this shard retained for one trace id —
// the same payload the terminal qsLine/recLine ships to the router, kept
// for direct inspection of a single shardd.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.tracer.Trace(id)
	if spans == nil {
		s.httpError(w, http.StatusNotFound, "unknown trace id %q (evicted or never recorded)", id)
		return
	}
	s.writeJSON(w, http.StatusOK, traceRespWire{TraceID: id, Spans: spans})
}

// Handler returns the shard RPC handler (bearer-auth wrapped when
// AuthToken is set), instrumented with per-route request counters and
// latency summaries.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.authorized(r) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="ssrec-shard"`)
			s.httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		start := time.Now()
		s.mux.ServeHTTP(w, r)
		// ServeMux stamps the matched pattern onto the request it routed,
		// so the label is the route, never raw (unbounded) URL paths.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.reg.Counter("ssrec_shard_rpc_requests_total", "Shard RPC requests served, by route.", "route", route).Inc()
		s.reg.Histogram("ssrec_shard_rpc_seconds", "Shard RPC handler latency, by route.", "route", route).Observe(time.Since(start))
	})
}

// authorized checks the bearer token in constant time. An unset AuthToken
// leaves the server open (the pre-auth trusted-network mode).
func (s *Server) authorized(r *http.Request) bool {
	if s.AuthToken == "" {
		return true
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	return ok && subtle.ConstantTimeCompare([]byte(tok), []byte(s.AuthToken)) == 1
}

// NewHTTPServer wraps the handler in an http.Server with unencrypted
// HTTP/2 enabled — REQUIRED for the full-duplex recommend exchange (the
// bound raise streams flow both ways on one stream; plain HTTP/1.1 cannot
// do that client-side). No read/write timeouts are set: recommend streams
// legitimately outlive any fixed budget, so deadlines belong to the
// caller's context. ReadHeaderTimeout still bounds header slow-loris.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	p := new(http.Protocols)
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		Protocols:         p,
		ReadHeaderTimeout: 10 * time.Second,
	}
}

func (s *Server) boundFlush() time.Duration {
	if s.BoundFlush > 0 {
		return s.BoundFlush
	}
	return DefaultBoundFlush
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // response already committed
}

func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// serving returns the booted shard or answers 503 (the client maps 5xx to
// ErrShardUnavailable — an unbooted shard is indistinguishable from an
// unreachable one, and both are cured by a snapshot handoff).
func (s *Server) serving(w http.ResponseWriter) *shard.Local {
	b := s.boot.Load()
	if b == nil {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not booted (awaiting snapshot handoff)", s.idx, s.of)
		return nil
	}
	return b.local
}

// handleHealth is the deprecated always-200 health report; probes should
// use /livez (process up) or /readyz (ready to serve) instead.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "<"+pathReadyz+">; rel=\"successor-version\"")
	s.writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleLivez answers 200 whenever the process serves HTTP at all — the
// restart-this-process signal. A blank shardd awaiting its snapshot
// handoff is alive (restarting it would not help), just not ready.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.healthSnapshot())
}

// handleReadyz answers 200 only when the shard is booted AND trained —
// safe to route traffic to; 503 otherwise (blank, awaiting handoff). The
// Router's probe path keys on this status.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.healthSnapshot()
	if !h.Trained {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not ready (awaiting snapshot handoff)", s.idx, s.of)
		return
	}
	s.writeJSON(w, http.StatusOK, h)
}

func (s *Server) healthSnapshot() healthWire {
	h := healthWire{Shard: s.idx, Of: s.of}
	if b := s.boot.Load(); b != nil {
		h.Trained = b.local.Engine().Trained()
		h.BootEpoch = b.epoch
	}
	return h
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	st := l.Stats()
	if s.WAL != nil {
		ws := s.WAL.Stats()
		st.WAL = &ws
	}
	s.writeJSON(w, http.StatusOK, toStatsWire(st))
}

// resumeWrite resumes the caller's trace off the X-Ssrec-Trace request
// header for a detached write-path apply: the returned context is
// detached from the client connection (the atomic-replication contract)
// but still carries the trace, so WAL-append spans land in this shard's
// tracer parented under the router's write span. Both returns are safe
// zero values when the request carries no trace.
func (s *Server) resumeWrite(r *http.Request, name string) (context.Context, *telemetry.Span) {
	ctx := context.WithoutCancel(r.Context())
	hv := r.Header.Get(telemetry.TraceHeader)
	if hv == "" {
		return ctx, nil
	}
	ctx, _ = s.tracer.Resume(ctx, hv)
	ctx, sp := telemetry.StartSpan(ctx, name)
	sp.SetAttr("shard", strconv.Itoa(s.idx))
	return ctx, sp
}

// logBatch appends one admitted batch to the WAL (no-op without one).
// It is called with walMu held, before the batch is applied: a batch
// that cannot be persisted is refused before it can diverge the durable
// log from the engine.
func (s *Server) logBatch(kind wal.Kind, payload []byte, encErr error) error {
	if encErr != nil {
		return encErr
	}
	_, err := s.WAL.Append(kind, payload)
	return err
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err := dec.Decode(dst); err != nil {
		s.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	var req registerWire
	if !s.decode(w, r, &req) {
		return
	}
	items := make([]model.Item, len(req.Items))
	for i, it := range req.Items {
		items[i] = it.model()
	}
	// Detached context: the batch arrived in full, so it is applied in
	// full — a disconnecting router must not leave this shard's producer
	// layer behind its siblings'. With a WAL the batch is persisted FIRST
	// (ack-after-durable): a crash between append and apply replays the
	// record on recovery, a crash before the append loses only an
	// unacknowledged batch the router will re-drive.
	ctx, wspan := s.resumeWrite(r, "shardd.register")
	defer wspan.End()
	var changed bool
	var err error
	if s.WAL != nil {
		s.walMu.Lock()
		payload, perr := wal.EncodeRegister(items)
		wsp := telemetry.LeafSpan(ctx, "wal.append")
		wsp.SetAttr("kind", "register")
		werr := s.logBatch(wal.KindRegister, payload, perr)
		wsp.End()
		if werr != nil {
			s.walMu.Unlock()
			s.httpError(w, http.StatusInternalServerError, "wal append: %v", werr)
			return
		}
		changed, err = l.RegisterItems(ctx, items)
		s.walMu.Unlock()
	} else {
		changed, err = l.RegisterItems(ctx, items)
	}
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "register: %v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, registerRespWire{Changed: changed})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	var req observeWire
	if !s.decode(w, r, &req) {
		return
	}
	batch := make([]core.Observation, len(req.Observations))
	for i, o := range req.Observations {
		batch[i] = core.Observation{UserID: o.UserID, Item: o.Item.model(), Timestamp: o.Timestamp}
	}
	// Detached for the same atomic-replication reason as handleRegister,
	// and persisted before applied for the same ack-after-durable reason.
	ctx, wspan := s.resumeWrite(r, "shardd.observe")
	defer wspan.End()
	var rep core.BatchReport
	var err error
	if s.WAL != nil {
		s.walMu.Lock()
		payload, perr := wal.EncodeObserve(batch)
		wsp := telemetry.LeafSpan(ctx, "wal.append")
		wsp.SetAttr("kind", "observe")
		werr := s.logBatch(wal.KindObserve, payload, perr)
		wsp.End()
		if werr != nil {
			s.walMu.Unlock()
			s.httpError(w, http.StatusInternalServerError, "wal append: %v", werr)
			return
		}
		rep, err = l.ObserveBatch(ctx, batch)
		s.walMu.Unlock()
	} else {
		rep, err = l.ObserveBatch(ctx, batch)
	}
	s.writeJSON(w, http.StatusOK, observeRespWire{reportWire: toReportWire(rep), Error: encodeErr(err)})
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	var env recommendEnvelope
	if err := dec.Decode(&env); err != nil {
		s.httpError(w, http.StatusBadRequest, "invalid envelope: %v", err)
		return
	}

	// Resume the caller's trace when the envelope carries one: shard-side
	// spans are retained locally AND shipped back on the terminal line.
	ctx := r.Context()
	var coll *telemetry.Collector
	var sp *telemetry.Span
	if env.Trace != "" {
		ctx, coll = s.tracer.Resume(ctx, env.Trace)
		ctx, sp = telemetry.StartSpan(ctx, "shardd.recommend")
		sp.SetAttr("shard", strconv.Itoa(s.idx))
	}

	b := sigtree.NewBound()
	last := math.Inf(-1)
	if env.Bound != nil {
		b.Raise(*env.Bound)
		last = *env.Bound
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex() //nolint:errcheck // no-op on HTTP/2, best-effort on HTTP/1
	w.WriteHeader(http.StatusOK)
	rc.Flush() //nolint:errcheck // commit headers so the client unblocks

	var mu sync.Mutex // serialises raise lines and the terminal line
	enc := json.NewEncoder(w)
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var pumps sync.WaitGroup
	if env.Stream {
		// Inbound raises: the router relays other shards' k-th scores; fold
		// them into the local bound so this shard prunes globally. Exits
		// when the request body ends — the client half-closes its stream as
		// soon as it reads the terminal result line — and is joined before
		// ServeHTTP returns (reading r.Body after the handler exits is
		// outside the net/http contract).
		go func() {
			defer close(readerDone)
			for {
				var line recLine
				if err := dec.Decode(&line); err != nil {
					return
				}
				if line.B != nil {
					b.Raise(*line.B)
				}
			}
		}()
		// Outbound raises: sample the local bound and publish increases.
		pumps.Add(1)
		go func() {
			defer pumps.Done()
			t := time.NewTicker(s.boundFlush())
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if v := b.Load(); v > last && !math.IsInf(v, 1) {
						last = v
						mu.Lock()
						enc.Encode(recLine{B: &v}) //nolint:errcheck // stream best-effort
						rc.Flush()                 //nolint:errcheck
						mu.Unlock()
					}
				}
			}
		}()
	}

	res, rerr := l.Recommend(ctx, env.Item.model(), env.Options.options(), b)
	sp.End()

	close(stop)
	pumps.Wait() // raise lines stop; the terminal line must be last
	mu.Lock()
	if env.Stream {
		// Final raise: the search just published its k-th exact score into
		// the local bound; flush it even if the sampling ticker never fired
		// (fast searches finish between ticks), so sibling shards still
		// running this query always see a finished shard's bound.
		if v := b.Load(); v > last && !math.IsInf(v, 1) {
			enc.Encode(recLine{B: &v}) //nolint:errcheck
		}
	}
	enc.Encode(recLine{Result: toResultWire(res), Err: encodeErr(rerr), Spans: coll.Take()}) //nolint:errcheck
	mu.Unlock()
	if env.Stream {
		// Join the inbound reader before ServeHTTP returns (reading r.Body
		// afterwards is outside the net/http contract): flush the terminal
		// line so the client sees it, reads it, and closes its request
		// stream, which ends the reader's Decode. A peer that never closes
		// gets its body closed from this side after a grace period, which
		// unblocks the pending read; the second wait is belt-and-braces for
		// transports where Close does not interrupt an in-flight Read.
		rc.Flush() //nolint:errcheck
		select {
		case <-readerDone:
		case <-time.After(time.Second):
			r.Body.Close() //nolint:errcheck // force the reader off the body
			select {
			case <-readerDone:
			case <-time.After(time.Second):
			}
		}
	}
}

// handleReshard stages a reshard: the router announces, before the
// snapshot handoff, that this shard's next boot is slot `slot` of the
// deployment partitioned by the posted versioned block table. The slot
// and width must match the identity this shardd was started with —
// resharding onto remote members means starting fresh processes with the
// FINAL identity (-index i -of m) and pointing the reshard at them.
func (s *Server) handleReshard(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "reshard: %v", err)
		return
	}
	slot, p, err := decodeReshardRequest(body)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if slot != s.idx || p.Shards != s.of {
		s.httpError(w, http.StatusConflict, "reshard addresses slot %d of %d, this shard is %d/%d", slot, p.Shards, s.idx, s.of)
		return
	}
	s.reshardPending.Store(&p)
	s.writeJSON(w, http.StatusOK, reshardRespWire{Staged: true})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Refuse a handoff addressed to a different shard identity — booting
	// the wrong leaf partition would silently break the deployment's
	// ownership partition.
	for header, want := range map[string]int{headerShardIndex: s.idx, headerShardCount: s.of} {
		if got := r.Header.Get(header); got != "" {
			if n, err := strconv.Atoi(got); err != nil || n != want {
				s.httpError(w, http.StatusConflict, "%s %q does not match this shard (%d/%d)", header, got, s.idx, s.of)
				return
			}
		}
	}
	var (
		e   *core.Engine
		err error
	)
	if pending := s.reshardPending.Swap(nil); pending != nil {
		// A staged reshard: boot with the successor epoch's versioned
		// table instead of the legacy modular rule. The stage is consumed
		// either way — a failed handoff aborts the whole reshard and any
		// retry re-stages.
		e, err = core.LoadPartitionFrom(http.MaxBytesReader(w, r.Body, s.MaxSnapshotBytes), s.idx, *pending)
	} else {
		e, err = core.LoadShardFrom(http.MaxBytesReader(w, r.Body, s.MaxSnapshotBytes), s.idx, s.of)
	}
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "snapshot: %v", err)
		return
	}
	s.Boot(e)
	// A handoff rebases the engine on state the WAL's existing records do
	// not describe: checkpoint immediately, so the log is exactly "this
	// snapshot + every batch admitted after it" again. A shard that
	// cannot persist the new baseline must not ack the handoff.
	if s.WAL != nil {
		if err := s.CheckpointWAL(); err != nil {
			s.httpError(w, http.StatusInternalServerError, "wal checkpoint after handoff: %v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReplay is the delta catch-up RPC: the supervisor streams just
// the write batches this shard missed, in sequence order, instead of a
// full snapshot handoff. The shard must already be booted and trained —
// a blank shard has no state to catch up and answers 503, steering the
// supervisor to the snapshot path. Success mints a fresh boot epoch:
// the same proof-of-reseed signal a snapshot handoff produces.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	if !l.Engine().Trained() {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not trained; needs a snapshot, not a delta", s.idx, s.of)
		return
	}
	var req replayWire
	if !s.decode(w, r, &req) {
		return
	}
	ctx := context.WithoutCancel(r.Context())
	applied := 0
	for _, b := range req.Batches {
		switch {
		case b.Register != nil:
			items := make([]model.Item, len(b.Register.Items))
			for i, it := range b.Register.Items {
				items[i] = it.model()
			}
			if err := s.applyLogged(ctx, l, wal.KindRegister, items, nil); err != nil {
				s.httpError(w, http.StatusInternalServerError, "replay seq %d: %v", b.Seq, err)
				return
			}
		case b.Observe != nil:
			batch := make([]core.Observation, len(b.Observe.Observations))
			for i, o := range b.Observe.Observations {
				batch[i] = core.Observation{UserID: o.UserID, Item: o.Item.model(), Timestamp: o.Timestamp}
			}
			if err := s.applyLogged(ctx, l, wal.KindObserve, nil, batch); err != nil {
				s.httpError(w, http.StatusInternalServerError, "replay seq %d: %v", b.Seq, err)
				return
			}
		default:
			s.httpError(w, http.StatusBadRequest, "replay seq %d: neither register nor observe", b.Seq)
			return
		}
		applied++
	}
	s.writeJSON(w, http.StatusOK, replayRespWire{Applied: applied, BootEpoch: s.refreshEpoch()})
}

// applyLogged applies one replayed batch under the same durable-first
// discipline as the live write path.
func (s *Server) applyLogged(ctx context.Context, l *shard.Local, kind wal.Kind, items []model.Item, batch []core.Observation) error {
	if s.WAL != nil {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		var payload []byte
		var perr error
		if kind == wal.KindRegister {
			payload, perr = wal.EncodeRegister(items)
		} else {
			payload, perr = wal.EncodeObserve(batch)
		}
		if err := s.logBatch(kind, payload, perr); err != nil {
			return fmt.Errorf("wal append: %w", err)
		}
	}
	if kind == wal.KindRegister {
		_, err := l.RegisterItems(ctx, items)
		return err
	}
	_, err := l.ObserveBatch(ctx, batch)
	return err
}

// CheckpointWAL writes the booted engine's snapshot into the WAL as a
// fresh checkpoint and compacts every logged record it covers. It
// serialises against the write path (walMu), so the snapshot and the
// checkpoint's sequence watermark agree exactly. A no-op without a WAL,
// before boot, while untrained, or when nothing was appended since the
// last checkpoint.
func (s *Server) CheckpointWAL() error {
	if s.WAL == nil {
		return nil
	}
	b := s.boot.Load()
	if b == nil || !b.local.Engine().Trained() {
		return nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if st := s.WAL.Stats(); st.HasCheckpoint && st.LastSeq == st.CheckpointSeq {
		return nil
	}
	return s.WAL.Checkpoint(func(w io.Writer) error { return b.local.Engine().SaveTo(w) })
}

// handleSnapshotExport streams the booted engine's full snapshot
// (core.SaveTo bytes) — the SOURCE end of the supervisor's auto-reseed:
// any healthy replica can seed any blank or stale one, because a shard
// snapshot carries the complete replicated state and the receiver
// rebuilds its own leaf partition on load.
func (s *Server) handleSnapshotExport(w http.ResponseWriter, _ *http.Request) {
	l := s.serving(w)
	if l == nil {
		return
	}
	if !l.Engine().Trained() {
		s.httpError(w, http.StatusServiceUnavailable, "shard %d/%d not trained; nothing to export", s.idx, s.of)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerShardIndex, strconv.Itoa(s.idx))
	w.Header().Set(headerShardCount, strconv.Itoa(s.of))
	l.Engine().SaveTo(w) //nolint:errcheck // response already committed; a broken stream fails the client's read
}
