// trace_propagation_test.go: end-to-end distributed tracing over the
// real fleet topology — an HTTP API server scatter-gathering over two
// shardd processes on loopback TCP. One /v2/recommend must yield ONE
// trace id whose span tree covers the handler, the router scatter, both
// RPC legs and the shard-side searches, fetchable from the API server
// via GET /v2/trace/{id} AND retained by each shardd's own tracer.
package shardrpc

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"ssrec/internal/server"
	"ssrec/internal/shard"
	"ssrec/internal/telemetry"
)

func TestTracePropagationAcrossFleet(t *testing.T) {
	for _, scatter := range []string{"stream", "item"} {
		t.Run(scatter, func(t *testing.T) {
			lb0 := startLoopback(t, 0, 2)
			lb1 := startLoopback(t, 1, 2)
			c0 := NewClient(lb0.addr, 0, 2)
			c1 := NewClient(lb1.addr, 1, 2)
			c0.DisableMuxScatter = scatter == "item"
			c1.DisableMuxScatter = scatter == "item"
			router, err := shard.NewRouter(c0, c1)
			if err != nil {
				t.Fatalf("NewRouter: %v", err)
			}
			if err := router.HandoffSnapshot(context.Background(), tinySnapshot(t)); err != nil {
				t.Fatalf("handoff: %v", err)
			}
			srv := server.NewBackend(router)
			srv.TraceAll = true
			h := srv.Handler()

			body := `{"items":[{"id":"probe","category":"music","producer":"up0","entities":["shared","e1"]}],"k":5}`
			req := httptest.NewRequest("POST", "/v2/recommend", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				t.Fatalf("recommend: status %d: %s", rec.Code, rec.Body.String())
			}
			traceID := rec.Header().Get(telemetry.TraceHeader)
			if traceID == "" {
				t.Fatalf("no %s header on the traced response", telemetry.TraceHeader)
			}

			treq := httptest.NewRequest("GET", "/v2/trace/"+traceID, nil)
			trec := httptest.NewRecorder()
			h.ServeHTTP(trec, treq)
			if trec.Code != 200 {
				t.Fatalf("trace fetch: status %d: %s", trec.Code, trec.Body.String())
			}
			// Decode the wire form directly: ids are hex strings on the wire.
			var tr struct {
				TraceID string `json:"trace_id"`
				Spans   []struct {
					TraceID string `json:"trace_id"`
					Name    string `json:"name"`
				} `json:"spans"`
			}
			if err := json.Unmarshal(trec.Body.Bytes(), &tr); err != nil {
				t.Fatalf("decode trace: %v", err)
			}
			if tr.TraceID != traceID {
				t.Fatalf("trace id mismatch: fetched %q, header %q", tr.TraceID, traceID)
			}
			counts := map[string]int{}
			for _, sp := range tr.Spans {
				if sp.TraceID != traceID {
					t.Errorf("span %s carries trace %q, want %q", sp.Name, sp.TraceID, traceID)
				}
				counts[sp.Name]++
			}
			for _, want := range []string{"http.request", "router.scatter", "shardd.recommend", "sigtree.search"} {
				if counts[want] == 0 {
					t.Errorf("span %q missing from the fetched tree: %v", want, counts)
				}
			}
			// Both scatter legs must appear: the local leg span and the RPC
			// client span, one per shard, and the shard-side spans shipped
			// back on the terminal lines cover both processes.
			if counts["router.shard"] != 2 {
				t.Errorf("router.shard spans = %d, want 2 (one per shard): %v", counts["router.shard"], counts)
			}
			if counts["rpc.recommend"] != 2 {
				t.Errorf("rpc.recommend spans = %d, want 2 (one per shard): %v", counts["rpc.recommend"], counts)
			}
			if counts["shardd.recommend"] != 2 || counts["sigtree.search"] != 2 {
				t.Errorf("shard-side spans: shardd.recommend=%d sigtree.search=%d, want 2 each",
					counts["shardd.recommend"], counts["sigtree.search"])
			}

			// Each shardd process retained the SAME trace id in its own
			// tracer — the local half of the distributed trace, fetchable
			// from the shard directly via GET /shard/v1/trace/{id}.
			for i, lb := range []*loopback{lb0, lb1} {
				spans := lb.srv.Tracer().Trace(traceID)
				if len(spans) == 0 {
					t.Errorf("shardd %d retained no spans for trace %s", i, traceID)
					continue
				}
				seen := map[string]bool{}
				for _, sp := range spans {
					seen[sp.Name] = true
				}
				if !seen["shardd.recommend"] || !seen["sigtree.search"] {
					t.Errorf("shardd %d trace misses shard-side spans: %v", i, seen)
				}
			}
		})
	}
}

// TestUntracedWireIsClean pins the exactness-neutrality contract at the
// wire: without a trace, the ask/envelope and terminal lines must not
// grow any telemetry fields (omitempty keeps the encoding byte-identical
// to the pre-telemetry protocol).
func TestUntracedWireIsClean(t *testing.T) {
	for _, v := range []any{
		qsAsk{},
		recommendEnvelope{},
		qsLine{ID: 7},
		recLine{},
	} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %T: %v", v, err)
		}
		if strings.Contains(string(b), "trace") || strings.Contains(string(b), "spans") {
			t.Errorf("untraced %T encodes telemetry fields: %s", v, b)
		}
	}
}
