// replica_lifecycle_test.go covers the replica-set machinery over the
// real transport: the /livez //readyz probe split, the GET-snapshot
// export that feeds the supervisor's auto-reseed, the slot-major
// DialReplicaRouter topology, and the all-replicas-down lifecycle — a
// slot with zero healthy replicas must serve the typed shard_unavailable
// partial result (not hang) and recover automatically once ANY replica
// returns and the supervisor reseeds it from a healthy sibling.
package shardrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/shard"
)

// TestLivezReadyzSplit: /livez answers 200 for any serving process,
// /readyz answers 503 until the shard is booted AND trained, and the
// deprecated /health alias keeps answering 200 with successor headers.
func TestLivezReadyzSplit(t *testing.T) {
	lb := startLoopback(t, 0, 2)
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get("http://" + lb.addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Blank shardd: alive (restarting it would not help) but not ready.
	if resp := get("/shard/v1/livez"); resp.StatusCode != http.StatusOK {
		t.Fatalf("blank livez = %d, want 200", resp.StatusCode)
	}
	if resp := get("/shard/v1/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("blank readyz = %d, want 503", resp.StatusCode)
	}
	resp := get("/shard/v1/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("blank health = %d, want 200 (deprecated alias never gates)", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("/health is missing the Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/shard/v1/readyz") {
		t.Fatalf("/health Link = %q, want successor pointer to /readyz", link)
	}

	// Booted + trained: ready.
	c := NewClient(lb.addr, 0, 2)
	defer c.Close()
	if err := c.Handoff(context.Background(), tinySnapshot(t)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if resp := get("/shard/v1/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("booted readyz = %d, want 200", resp.StatusCode)
	}
}

// TestSnapshotExportRoundTrip: GET /shard/v1/snapshot refuses on a blank
// shard with the typed unavailable error, and once booted exports bytes
// that seed another replica bit-compatibly — the exact path the
// supervisor's auto-reseed walks.
func TestSnapshotExportRoundTrip(t *testing.T) {
	ctx := context.Background()
	tc := buildTinyCorpus()
	src := startLoopback(t, 0, 2)
	cSrc := NewClient(src.addr, 0, 2)
	defer cSrc.Close()

	if _, err := cSrc.Snapshot(ctx); !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("blank snapshot export: err = %v, want ErrShardUnavailable", err)
	}

	if err := cSrc.Handoff(ctx, tinySnapshot(t)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	data, err := cSrc.Snapshot(ctx)
	if err != nil {
		t.Fatalf("snapshot export: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("snapshot export returned no bytes")
	}

	// The export seeds a blank sibling; both replicas then answer the same
	// query identically (the snapshot carries the complete replicated
	// state, the receiver rebuilds its own leaf partition on load).
	dst := startLoopback(t, 0, 2)
	cDst := NewClient(dst.addr, 0, 2)
	defer cDst.Close()
	if err := cDst.Handoff(ctx, data); err != nil {
		t.Fatalf("reseed handoff from export: %v", err)
	}
	o := core.ResolveOptions(core.WithK(5))
	want, err := cSrc.Recommend(ctx, tc.query, o, nil)
	if err != nil {
		t.Fatalf("source recommend: %v", err)
	}
	got, err := cDst.Recommend(ctx, tc.query, o, nil)
	if err != nil {
		t.Fatalf("reseeded recommend: %v", err)
	}
	if len(want.Recommendations) == 0 || fmt.Sprint(want.Recommendations) != fmt.Sprint(got.Recommendations) {
		t.Fatalf("reseeded replica diverged from its seed:\n  src: %v\n  dst: %v",
			want.Recommendations, got.Recommendations)
	}
}

// TestDialReplicaRouterTopology: the slot-major address grouping and its
// validation — 4 addrs at R=2 form 2 slots whose replicas answer with
// shard identity (i, 2); a count that does not divide is refused.
func TestDialReplicaRouterTopology(t *testing.T) {
	ctx := context.Background()
	tc := buildTinyCorpus()
	var addrs []string
	for i := 0; i < 2; i++ { // slot-major: [s0r0 s0r1 s1r0 s1r1]
		for j := 0; j < 2; j++ {
			addrs = append(addrs, startLoopback(t, i, 2).addr)
		}
	}

	if _, err := DialReplicaRouter(addrs[:3], 2); err == nil {
		t.Fatal("3 addrs at R=2 must be refused")
	}

	r, err := DialReplicaRouter(addrs, 2)
	if err != nil {
		t.Fatalf("DialReplicaRouter: %v", err)
	}
	if got := r.Replicas(); got != 2 {
		t.Fatalf("Replicas() = %d, want 2", got)
	}
	if err := r.HandoffSnapshot(ctx, tinySnapshot(t)); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	res, err := r.RecommendCtx(ctx, tc.query, core.WithK(5))
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("replicated remote deployment returned nothing")
	}
	if states := r.ReplicaHealth(); len(states) != 4 {
		t.Fatalf("ReplicaHealth reported %d replicas, want 4: %+v", len(states), states)
	}
}

// TestAllReplicasDownLifecycle is the satellite acceptance test: a slot
// whose replicas are ALL dead serves the typed shard_unavailable partial
// result (bounded, no hang), keeps serving the surviving slot, and
// recovers automatically — without any manual runbook step — once one
// replica restarts blank at the same address and the supervisor reseeds
// it from a healthy sibling's exported snapshot.
func TestAllReplicasDownLifecycle(t *testing.T) {
	snap := tinySnapshot(t)
	tc := buildTinyCorpus()
	ctx := context.Background()

	// Slot 0: two plain loopbacks (they survive). Slot 1: two replicas on
	// pinned ports so both can be killed and one restarted blank.
	var members []shard.Shard
	var reps0 [2]*Client
	for j := 0; j < 2; j++ {
		c := NewClient(startLoopback(t, 0, 2).addr, 0, 2)
		defer c.Close()
		reps0[j] = c
	}
	rs0, err := shard.NewReplicaSet(0, reps0[0], reps0[1])
	if err != nil {
		t.Fatal(err)
	}
	members = append(members, rs0)

	var hs1 [2]*http.Server
	var addr1 [2]string
	var reps1 [2]*Client
	for j := 0; j < 2; j++ {
		srv, err := NewServer(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr1[j] = ln.Addr().String()
		hs1[j] = srv.NewHTTPServer(addr1[j])
		go hs1[j].Serve(ln) //nolint:errcheck
		c := NewClient(addr1[j], 1, 2)
		defer c.Close()
		reps1[j] = c
	}
	rs1, err := shard.NewReplicaSet(1, reps1[0], reps1[1])
	if err != nil {
		t.Fatal(err)
	}
	members = append(members, rs1)

	r, err := shard.NewRouter(members...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.HandoffSnapshot(ctx, snap); err != nil {
		t.Fatalf("boot handoff: %v", err)
	}
	if _, err := r.RecommendCtx(ctx, tc.query, core.WithK(5)); err != nil {
		t.Fatalf("healthy recommend: %v", err)
	}

	// ---- kill BOTH slot-1 replicas ----
	hs1[0].Close()
	hs1[1].Close()

	// Zero healthy replicas: the slot serves the typed degraded partial
	// result within a bound — it must not hang.
	done := make(chan struct{})
	var res core.Result
	var degradedErr error
	go func() {
		defer close(done)
		res, degradedErr = r.RecommendCtx(ctx, tc.fresh[0], core.WithK(5))
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("all-replicas-down query hung")
	}
	if !errors.Is(degradedErr, shard.ErrShardUnavailable) {
		t.Fatalf("all-replicas-down recommend: err = %v, want ErrShardUnavailable", degradedErr)
	}
	if len(res.Recommendations) == 0 {
		t.Fatal("degraded mode returned no partial results from the surviving slot")
	}

	// The write path lands on the surviving slot and reports the typed
	// replication failure.
	rep, err := r.ObserveBatch(ctx, []core.Observation{
		{UserID: "user1", Item: tc.items[3], Timestamp: 900},
	})
	if !errors.Is(err, shard.ErrShardUnavailable) {
		t.Fatalf("observe with a slot down: err = %v, want ErrShardUnavailable", err)
	}
	if rep.Applied != 1 {
		t.Fatalf("surviving slot did not apply the batch: %+v", rep)
	}

	// ---- restart ONE replica blank at its old address ----
	var lnB net.Listener
	for i := 0; ; i++ {
		lnB, err = net.Listen("tcp", addr1[1])
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("rebind %s: %v", addr1[1], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srvB, err := NewServer(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	hsB := srvB.NewHTTPServer(addr1[1])
	go hsB.Serve(lnB) //nolint:errcheck
	t.Cleanup(func() { hsB.Close() })

	// Reachable-but-blank is not enough: a bare probe must keep the slot
	// excluded (it missed replicated writes and has no engine at all).
	if up := r.Probe(ctx); len(up) != 0 {
		t.Fatalf("Probe re-included a blank replica: %v", up)
	}

	// The supervisor closes the loop: it pulls a snapshot from a healthy
	// sibling (slot 0 — any trained shard's export can seed any replica)
	// and hands it to the blank replica, clearing the slot's debt.
	sup := r.StartSupervisor(50 * time.Millisecond)
	defer sup.Stop()
	deadline := time.Now().Add(30 * time.Second)
	for len(r.Down()) != 0 {
		if time.Now().After(deadline) {
			st, _ := r.SupervisorStats()
			t.Fatalf("slot never recovered: Down()=%v supervisor=%+v health=%+v",
				r.Down(), st, r.ReplicaHealth())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if st, ok := r.SupervisorStats(); !ok || st.Reseeds < 1 {
		t.Fatalf("supervisor stats = %+v (ok=%v), want >= 1 reseed", st, ok)
	}

	// Recovered: queries are error-free again and the reseeded replica
	// serves slot 1's users. Its dead sibling stays excluded without
	// harming the slot.
	if _, err := r.RecommendCtx(ctx, tc.fresh[1], core.WithK(5)); err != nil {
		t.Fatalf("recommend after auto-recovery: %v", err)
	}
	var slot1Healthy int
	for _, st := range r.ReplicaHealth() {
		if st.Slot == 1 && st.State == "healthy" {
			slot1Healthy++
		}
	}
	if slot1Healthy == 0 {
		t.Fatalf("no healthy slot-1 replica after recovery: %+v", r.ReplicaHealth())
	}
}
