// Package sigtree implements the extended signature trees of the
// CPPse-index (Zhou et al., ICDE 2019, §V): one tree per ⟨user block,
// category⟩ pair, holding an impact-encoded leaf entry (LEntry) per user
// and max/min-aggregated internal entries (IEntry) that upper-bound the
// relevance of every descendant (Lemmas 1–2), enabling the branch-and-bound
// KNN of Algorithm 1.
//
// # Signature encoding
//
// The paper stores impact lists of smoothed probabilities. This
// implementation stores the exact sufficient statistics instead — raw
// producer/entity counts plus their totals — and folds Dirichlet smoothing
// into the scoring function:
//
//	p̂(x|u) = (count(x) + μ·bg(x)) / (total + μ)
//
// which is monotone increasing in count(x) and decreasing in total. An
// internal entry therefore aggregates counts with max() and totals with
// min(), making R(IEntry, v) a true upper bound of R(LEntry, v) for every
// descendant — the exact analogue of Lemma 1, but tight even for
// producers/entities outside the block universe (their background term is
// carried on the query). See DESIGN.md.
package sigtree

import (
	"math"
)

// Universe is an append-only name→index mapping shared by signatures and
// queries. Following the paper's maintenance rule, a fifth of extra
// capacity is reserved at construction so early growth does not reallocate
// ("we reserve 20% space of each entry").
type Universe struct {
	names []string
	idx   map[string]int
}

// NewUniverse builds a universe over the initial names (deduplicated,
// insertion order preserved).
func NewUniverse(names []string) *Universe {
	u := &Universe{
		names: make([]string, 0, len(names)+len(names)/5+1),
		idx:   make(map[string]int, len(names)),
	}
	for _, n := range names {
		u.Add(n)
	}
	return u
}

// Index returns the index of name and whether it is present.
func (u *Universe) Index(name string) (int, bool) {
	i, ok := u.idx[name]
	return i, ok
}

// Add returns the index of name, appending it if new.
func (u *Universe) Add(name string) int {
	if i, ok := u.idx[name]; ok {
		return i
	}
	i := len(u.names)
	u.names = append(u.names, name)
	u.idx[name] = i
	return i
}

// Len returns the number of names.
func (u *Universe) Len() int { return len(u.names) }

// Names returns the backing name slice (do not mutate).
func (u *Universe) Names() []string { return u.names }

// Signature is the impact encoding of one leaf entry (a user's long- and
// short-term statistics under the tree's category) or the max/min
// aggregation of an internal entry.
type Signature struct {
	Pl float64 // cached long-term BiHMM probability p(c|u)
	Ps float64 // cached short-term BiHMM probability ps(c|u)

	ProdCounts []float64 // raw browse counts over the block's producer universe
	ProdTotal  float64   // Σ producer counts of the user (min over children for IEntry)

	EntCounts []float64 // raw entity counts (this category) over the tree's entity universe
	EntTotal  float64   // Σ entity counts of the user in this category (min for IEntry)
}

// Clone deep-copies the signature.
func (s *Signature) Clone() Signature {
	c := *s
	c.ProdCounts = append([]float64(nil), s.ProdCounts...)
	c.EntCounts = append([]float64(nil), s.EntCounts...)
	return c
}

// foldInto widens dst to dominate src: max of Pl/Ps and count vectors,
// min of totals.
func foldInto(dst, src *Signature) {
	if src.Pl > dst.Pl {
		dst.Pl = src.Pl
	}
	if src.Ps > dst.Ps {
		dst.Ps = src.Ps
	}
	if src.ProdTotal < dst.ProdTotal {
		dst.ProdTotal = src.ProdTotal
	}
	if src.EntTotal < dst.EntTotal {
		dst.EntTotal = src.EntTotal
	}
	dst.ProdCounts = foldMax(dst.ProdCounts, src.ProdCounts)
	dst.EntCounts = foldMax(dst.EntCounts, src.EntCounts)
}

func foldMax(dst, src []float64) []float64 {
	if len(src) > len(dst) {
		if cap(dst) >= len(src) {
			// Grow within capacity, zeroing the exposed region — the
			// allocation-free steady state of recomputeSig's buffer reuse.
			old := len(dst)
			dst = dst[:len(src)]
			for i := old; i < len(dst); i++ {
				dst[i] = 0
			}
		} else {
			grown := make([]float64, len(src))
			copy(grown, dst)
			dst = grown
		}
	}
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
	return dst
}

// emptyAgg is the identity element for foldInto.
func emptyAgg() Signature {
	return Signature{ProdTotal: math.Inf(1), EntTotal: math.Inf(1)}
}

// WeightedIdx is one sparse query entity: universe index and accumulated
// weight (frequency × expansion weight).
type WeightedIdx struct {
	Idx int
	W   float64
}

// Query is the pseudo-query encoding of an incoming item against one tree
// (the paper's Example 1): the producer one-hot collapses to ProdIdx, the
// entity frequency/weight vectors to the sparse Ents list, and the
// user-independent smoothing mass is precomputed in BgProd/BgEnt.
type Query struct {
	ProdIdx int     // index of the item's producer in the block universe, -1 if absent
	BgProd  float64 // background probability of the item's producer
	Ents    []WeightedIdx
	BgEnt   float64 // Σ_e freq_e·w_e·bg(e) over all query entities
	Mu      float64 // Dirichlet pseudo-count
	LambdaS float64 // Eq. 3 balance
}

const logFloor = 1e-12

func safeLog(v float64) float64 {
	if v < logFloor {
		v = logFloor
	}
	return math.Log(v)
}

// Score evaluates R(entry, v) per Definition 2 / Eq. 3 against a signature
// (leaf or internal). For internal entries this is the Recommendation
// Upper Bound.
func Score(sig *Signature, q *Query) float64 {
	var prodCount float64
	if q.ProdIdx >= 0 && q.ProdIdx < len(sig.ProdCounts) {
		prodCount = sig.ProdCounts[q.ProdIdx]
	}
	prodTerm := (prodCount + q.Mu*q.BgProd) / (sig.ProdTotal + q.Mu)

	var entDot float64
	for _, we := range q.Ents {
		if we.Idx >= 0 && we.Idx < len(sig.EntCounts) {
			entDot += we.W * sig.EntCounts[we.Idx]
		}
	}
	entTerm := (entDot + q.Mu*q.BgEnt) / (sig.EntTotal + q.Mu)

	longTerm := safeLog(sig.Pl) + safeLog(prodTerm) + safeLog(entTerm)
	return (1-q.LambdaS)*longTerm + q.LambdaS*safeLog(sig.Ps)
}

// LeafEntry is an LEntry: one user's signature plus its location.
type LeafEntry struct {
	UserID string
	Sig    Signature
	parent *node
}

type node struct {
	leaf     bool
	entries  []*LeafEntry // when leaf
	children []*node      // when internal
	sig      Signature    // aggregate (IEntry signature)
	parent   *node
}

func (n *node) recomputeSig() {
	// Reuse the node's own count buffers: entries/children hold separate
	// slices, so truncating and refolding in place is safe and keeps
	// propagateUp allocation-free once the buffers have grown to size.
	agg := emptyAgg()
	agg.ProdCounts = n.sig.ProdCounts[:0]
	agg.EntCounts = n.sig.EntCounts[:0]
	if n.leaf {
		for _, e := range n.entries {
			foldInto(&agg, &e.Sig)
		}
	} else {
		for _, c := range n.children {
			foldInto(&agg, &c.sig)
		}
	}
	n.sig = agg
}

// Tree is one extended signature tree for a ⟨block, category⟩ pair.
type Tree struct {
	BlockID  int
	Category string
	Prod     *Universe // producer universe, shared across the block's trees
	Ent      *Universe // entity universe of this tree

	root   *node
	fanout int
	byUser map[string]*LeafEntry
}

// DefaultFanout is used when New is called with fanout < 2.
const DefaultFanout = 8

// New creates an empty tree.
func New(blockID int, category string, prod, ent *Universe, fanout int) *Tree {
	if fanout < 2 {
		fanout = DefaultFanout
	}
	return &Tree{
		BlockID:  blockID,
		Category: category,
		Prod:     prod,
		Ent:      ent,
		root:     &node{leaf: true, sig: emptyAgg()},
		fanout:   fanout,
		byUser:   make(map[string]*LeafEntry),
	}
}

// Len returns the number of leaf entries (users).
func (t *Tree) Len() int { return len(t.byUser) }

// Get returns the signature stored for userID.
func (t *Tree) Get(userID string) (Signature, bool) {
	e := t.byUser[userID]
	if e == nil {
		return Signature{}, false
	}
	return e.Sig, true
}

// Has reports whether the user has a leaf entry.
func (t *Tree) Has(userID string) bool { return t.byUser[userID] != nil }

// Users returns the user IDs present (unspecified order).
func (t *Tree) Users() []string {
	out := make([]string, 0, len(t.byUser))
	for u := range t.byUser {
		out = append(out, u)
	}
	return out
}

// Insert adds a new leaf entry. Inserting an existing user updates it
// instead.
func (t *Tree) Insert(userID string, sig Signature) {
	if e := t.byUser[userID]; e != nil {
		t.updateEntry(e, sig)
		return
	}
	// Descend along the child whose aggregate signature expands least to
	// absorb the new entry (R-tree ChooseSubtree analogue): similar users
	// end up co-located, which is what keeps internal upper bounds tight.
	n := t.root
	for !n.leaf {
		best, bestCost := n.children[0], expansionCost(&n.children[0].sig, &sig)
		for _, c := range n.children[1:] {
			if cost := expansionCost(&c.sig, &sig); cost < bestCost ||
				(cost == bestCost && subtreeSize(c) < subtreeSize(best)) {
				best, bestCost = c, cost
			}
		}
		n = best
	}
	e := &LeafEntry{UserID: userID, Sig: sig, parent: n}
	n.entries = append(n.entries, e)
	t.byUser[userID] = e
	t.propagateUp(n)
	if len(n.entries) > t.fanout {
		t.splitLeaf(n)
	}
}

// Update replaces a user's signature and refreshes ancestor aggregates.
// Returns false if the user is absent.
func (t *Tree) Update(userID string, sig Signature) bool {
	e := t.byUser[userID]
	if e == nil {
		return false
	}
	t.updateEntry(e, sig)
	return true
}

func (t *Tree) updateEntry(e *LeafEntry, sig Signature) {
	e.Sig = sig
	t.propagateUp(e.parent)
}

// UpdateCopy replaces a user's signature by copying sig's values into the
// leaf-owned slices instead of adopting them — the write path for
// scratch-backed signatures (cppse's pooled refresh buffers), which must
// never be stored into the tree. Returns false if the user is absent.
func (t *Tree) UpdateCopy(userID string, sig *Signature) bool {
	e := t.byUser[userID]
	if e == nil {
		return false
	}
	e.Sig.Pl, e.Sig.Ps = sig.Pl, sig.Ps
	e.Sig.ProdTotal, e.Sig.EntTotal = sig.ProdTotal, sig.EntTotal
	e.Sig.ProdCounts = append(e.Sig.ProdCounts[:0], sig.ProdCounts...)
	e.Sig.EntCounts = append(e.Sig.EntCounts[:0], sig.EntCounts...)
	t.propagateUp(e.parent)
	return true
}

// UpdateProbs restamps only the cached BiHMM probabilities of a user's
// leaf, leaving the count statistics untouched — the non-dirty-category
// leg of an incremental refresh, where the short-term prediction changed
// (the window grew) but no event landed in this tree's category. Returns
// false if the user is absent.
func (t *Tree) UpdateProbs(userID string, pl, ps float64) bool {
	e := t.byUser[userID]
	if e == nil {
		return false
	}
	e.Sig.Pl, e.Sig.Ps = pl, ps
	t.propagateUp(e.parent)
	return true
}

func (t *Tree) propagateUp(n *node) {
	for ; n != nil; n = n.parent {
		n.recomputeSig()
	}
}

// expansionCost estimates how much agg must widen to dominate sig: the sum
// of count increases plus (heavily weighted) probability increases and
// total decreases. Lower cost = better fit.
func expansionCost(agg, sig *Signature) float64 {
	var cost float64
	for i, v := range sig.ProdCounts {
		var cur float64
		if i < len(agg.ProdCounts) {
			cur = agg.ProdCounts[i]
		}
		if v > cur {
			cost += v - cur
		}
	}
	for i, v := range sig.EntCounts {
		var cur float64
		if i < len(agg.EntCounts) {
			cur = agg.EntCounts[i]
		}
		if v > cur {
			cost += v - cur
		}
	}
	if sig.Pl > agg.Pl {
		cost += 50 * (sig.Pl - agg.Pl)
	}
	if sig.Ps > agg.Ps {
		cost += 50 * (sig.Ps - agg.Ps)
	}
	if sig.ProdTotal < agg.ProdTotal {
		cost += agg.ProdTotal - sig.ProdTotal
	}
	if sig.EntTotal < agg.EntTotal {
		cost += agg.EntTotal - sig.EntTotal
	}
	return cost
}

func subtreeSize(n *node) int {
	if n.leaf {
		return len(n.entries)
	}
	s := 0
	for _, c := range n.children {
		s += subtreeSize(c)
	}
	return s
}

func (t *Tree) splitLeaf(n *node) {
	half := len(n.entries) / 2
	left := &node{leaf: true, entries: n.entries[:half:half], parent: n.parent}
	right := &node{leaf: true, entries: append([]*LeafEntry(nil), n.entries[half:]...), parent: n.parent}
	for _, e := range left.entries {
		e.parent = left
	}
	for _, e := range right.entries {
		e.parent = right
	}
	left.recomputeSig()
	right.recomputeSig()
	t.replaceChild(n, left, right)
}

func (t *Tree) splitInternal(n *node) {
	half := len(n.children) / 2
	left := &node{children: n.children[:half:half], parent: n.parent}
	right := &node{children: append([]*node(nil), n.children[half:]...), parent: n.parent}
	for _, c := range left.children {
		c.parent = left
	}
	for _, c := range right.children {
		c.parent = right
	}
	left.recomputeSig()
	right.recomputeSig()
	t.replaceChild(n, left, right)
}

// replaceChild swaps n for (left, right) under n's parent, growing a new
// root if n was the root, and splits the parent if it overflows.
func (t *Tree) replaceChild(n, left, right *node) {
	p := n.parent
	if p == nil {
		newRoot := &node{children: []*node{left, right}}
		left.parent, right.parent = newRoot, newRoot
		newRoot.recomputeSig()
		t.root = newRoot
		return
	}
	pos := -1
	for i, c := range p.children {
		if c == n {
			pos = i
			break
		}
	}
	rebuilt := make([]*node, 0, len(p.children)+1)
	rebuilt = append(rebuilt, p.children[:pos]...)
	rebuilt = append(rebuilt, left, right)
	rebuilt = append(rebuilt, p.children[pos+1:]...)
	p.children = rebuilt
	t.propagateUp(p)
	if len(p.children) > t.fanout {
		t.splitInternal(p)
	}
}

// Delete removes a user's leaf entry and refreshes ancestor aggregates.
// Empty leaf nodes are left in place (they are cheap and splits stay
// balanced); their aggregates become the fold identity. Returns false if
// the user is absent.
func (t *Tree) Delete(userID string) bool {
	e := t.byUser[userID]
	if e == nil {
		return false
	}
	n := e.parent
	for i, cur := range n.entries {
		if cur == e {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			break
		}
	}
	delete(t.byUser, userID)
	t.propagateUp(n)
	return true
}

// RootScore returns the upper-bound score of the whole tree for a query —
// the priority of the tree's root in Algorithm 1.
func (t *Tree) RootScore(q *Query) float64 {
	if t.Len() == 0 {
		return math.Inf(-1)
	}
	return Score(&t.root.sig, q)
}

// Depth returns the height of the tree (1 = single leaf node).
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}
