package sigtree

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestSearchCtxNilEquivalence: a nil or never-cancelled context changes
// nothing — results stay bit-identical to Search at every parallelism.
func TestSearchCtxNilEquivalence(t *testing.T) {
	tqs := buildForest(t, 7, 60, 11)
	ctx := context.Background()
	for _, k := range []int{1, 10, 50} {
		want, _ := Search(tqs, k)
		for _, p := range []int{0, 2, 8} {
			got, _, err := SearchParallelCtx(ctx, tqs, k, p)
			if err != nil {
				t.Fatalf("k=%d p=%d: %v", k, p, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d p=%d: ctx path diverged", k, p)
			}
		}
	}
}

// TestSearchCtxCancelled: a cancelled context aborts the traversal with
// context.Canceled on both the sequential and the partitioned path.
func TestSearchCtxCancelled(t *testing.T) {
	tqs := buildForest(t, 7, 400, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{0, 4} {
		_, _, err := SearchParallelCtx(ctx, tqs, 10, p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
	}
}

// TestSearchParallelCtxMidFlightCancel cancels while the partition workers
// are live: every worker must observe the cancellation at its next poll,
// the call must report ctx.Err(), and all workers must be joined — no
// goroutine may outlive SearchParallelCtx (leak-checked against a
// goroutine-count baseline). The deadline sweep makes at least one run
// cancel mid-traversal rather than at the entry check.
func TestSearchParallelCtxMidFlightCancel(t *testing.T) {
	tqs := buildForest(t, 9, 800, 13)
	base := runtime.NumGoroutine()
	sawCancel, sawComplete := false, false
	for _, timeout := range []time.Duration{time.Nanosecond, 10 * time.Microsecond, 200 * time.Microsecond, 5 * time.Millisecond, time.Second} {
		for _, p := range []int{2, 8} {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			recs, _, err := SearchParallelCtx(ctx, tqs, 20, p)
			cancel()
			if err != nil {
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("timeout %v p=%d: err = %v", timeout, p, err)
				}
				sawCancel = true
			} else {
				sawComplete = true
				if len(recs) == 0 {
					t.Fatalf("timeout %v p=%d: completed with no results", timeout, p)
				}
			}
		}
	}
	if !sawCancel || !sawComplete {
		t.Fatalf("sweep did not cover both outcomes (cancelled=%v completed=%v)", sawCancel, sawComplete)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("search workers leaked: %d > %d\n%s", runtime.NumGoroutine(), base, buf)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSearchParallelBoundCtxExternal: an externally supplied bound behaves
// exactly like the internal one (bit-identical results) at every
// parallelism — the single-process statement of the cross-shard protocol —
// and a pre-poisoned bound above the true k-th score must only ever prune,
// never fabricate results.
func TestSearchParallelBoundCtxExternal(t *testing.T) {
	tqs := buildForest(t, 7, 120, 11)
	ctx := context.Background()
	for _, k := range []int{1, 10, 40} {
		want, _ := Search(tqs, k)
		for _, p := range []int{0, 1, 2, 8} {
			got, _, err := SearchParallelBoundCtx(ctx, tqs, k, p, NewBound())
			if err != nil {
				t.Fatalf("k=%d p=%d: %v", k, p, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d p=%d: external bound diverged\n got %v\nwant %v", k, p, got, want)
			}
		}
		// A bound pre-raised to the true best score prunes aggressively,
		// but pruning is strict (<) and ties are expanded — so the best
		// entry must still surface at rank 0. (Lower-ranked entries are
		// legitimately pruned or kept depending on traversal timing; only
		// the at-bound guarantee is part of the protocol.)
		if len(want) > 0 {
			poisoned := NewBound()
			poisoned.Raise(want[0].Score)
			got, _, err := SearchParallelBoundCtx(ctx, tqs, k, 4, poisoned)
			if err != nil {
				t.Fatalf("poisoned k=%d: %v", k, err)
			}
			if len(got) == 0 || got[0] != want[0] {
				t.Fatalf("poisoned bound lost the at-bound best entry: got %v, want first %+v", got, want[0])
			}
		}
	}
}
