package sigtree

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestSearchCtxNilEquivalence: a nil or never-cancelled context changes
// nothing — results stay bit-identical to Search at every parallelism.
func TestSearchCtxNilEquivalence(t *testing.T) {
	tqs := buildForest(t, 7, 60, 11)
	ctx := context.Background()
	for _, k := range []int{1, 10, 50} {
		want, _ := Search(tqs, k)
		for _, p := range []int{0, 2, 8} {
			got, _, err := SearchParallelCtx(ctx, tqs, k, p)
			if err != nil {
				t.Fatalf("k=%d p=%d: %v", k, p, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d p=%d: ctx path diverged", k, p)
			}
		}
	}
}

// TestSearchCtxCancelled: a cancelled context aborts the traversal with
// context.Canceled on both the sequential and the partitioned path.
func TestSearchCtxCancelled(t *testing.T) {
	tqs := buildForest(t, 7, 400, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{0, 4} {
		_, _, err := SearchParallelCtx(ctx, tqs, 10, p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
	}
}
