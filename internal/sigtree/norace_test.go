//go:build !race

package sigtree

const raceEnabled = false
