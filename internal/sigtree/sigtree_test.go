package sigtree

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomSignature builds a plausible leaf signature over the given
// universe sizes.
func randomSignature(nProd, nEnt int, rng *rand.Rand) Signature {
	s := Signature{
		Pl:         0.05 + 0.9*rng.Float64(),
		Ps:         0.05 + 0.9*rng.Float64(),
		ProdCounts: make([]float64, nProd),
		EntCounts:  make([]float64, nEnt),
	}
	for i := range s.ProdCounts {
		s.ProdCounts[i] = float64(rng.Intn(20))
		s.ProdTotal += s.ProdCounts[i]
	}
	for i := range s.EntCounts {
		s.EntCounts[i] = float64(rng.Intn(10))
		s.EntTotal += s.EntCounts[i]
	}
	if s.ProdTotal == 0 {
		s.ProdCounts[0], s.ProdTotal = 1, 1
	}
	if s.EntTotal == 0 {
		s.EntCounts[0], s.EntTotal = 1, 1
	}
	return s
}

func randomQuery(nProd, nEnt int, rng *rand.Rand) *Query {
	q := &Query{
		ProdIdx: rng.Intn(nProd),
		BgProd:  0.01 + rng.Float64()*0.1,
		BgEnt:   0.01 + rng.Float64()*0.2,
		Mu:      10,
		LambdaS: 0.4,
	}
	used := map[int]bool{}
	for i := 0; i < 3; i++ {
		idx := rng.Intn(nEnt)
		if used[idx] {
			continue
		}
		used[idx] = true
		q.Ents = append(q.Ents, WeightedIdx{Idx: idx, W: 0.5 + rng.Float64()})
	}
	return q
}

func buildTree(t testing.TB, nUsers, fanout int, seed int64) (*Tree, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
	ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
	tr := New(0, "sports", prod, ent, fanout)
	for i := 0; i < nUsers; i++ {
		tr.Insert(fmt.Sprintf("u%03d", i), randomSignature(prod.Len(), ent.Len(), rng))
	}
	return tr, rng
}

func TestUniverse(t *testing.T) {
	u := NewUniverse([]string{"a", "b", "a"})
	if u.Len() != 2 {
		t.Fatalf("Len = %d", u.Len())
	}
	if i, ok := u.Index("b"); !ok || i != 1 {
		t.Fatalf("Index(b) = %d %v", i, ok)
	}
	if _, ok := u.Index("z"); ok {
		t.Fatal("phantom index")
	}
	if got := u.Add("c"); got != 2 {
		t.Fatalf("Add(c) = %d", got)
	}
	if got := u.Add("a"); got != 0 {
		t.Fatalf("Add(a) = %d, want existing index 0", got)
	}
	if !reflect.DeepEqual(u.Names(), []string{"a", "b", "c"}) {
		t.Fatalf("Names = %v", u.Names())
	}
}

func TestInsertAndGet(t *testing.T) {
	tr, rng := buildTree(t, 20, 4, 1)
	if tr.Len() != 20 {
		t.Fatalf("Len = %d", tr.Len())
	}
	sig := randomSignature(4, 6, rng)
	tr.Insert("newuser", sig)
	got, ok := tr.Get("newuser")
	if !ok || got.Pl != sig.Pl {
		t.Fatalf("Get after Insert: %v %v", got, ok)
	}
	if !tr.Has("newuser") || tr.Has("ghost") {
		t.Fatal("Has broken")
	}
	if len(tr.Users()) != 21 {
		t.Fatalf("Users = %d", len(tr.Users()))
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	tr, rng := buildTree(t, 5, 4, 2)
	sig := randomSignature(4, 6, rng)
	sig.Pl = 0.123456
	tr.Insert("u001", sig)
	if tr.Len() != 5 {
		t.Fatalf("duplicate insert grew tree: %d", tr.Len())
	}
	got, _ := tr.Get("u001")
	if got.Pl != 0.123456 {
		t.Fatalf("Pl = %v", got.Pl)
	}
}

func TestUpdateMissingUser(t *testing.T) {
	tr, rng := buildTree(t, 5, 4, 3)
	if tr.Update("ghost", randomSignature(4, 6, rng)) {
		t.Fatal("Update invented a user")
	}
}

func TestTreeGrowsDepth(t *testing.T) {
	tr, _ := buildTree(t, 100, 4, 4)
	if tr.Depth() < 3 {
		t.Errorf("depth = %d for 100 users at fanout 4", tr.Depth())
	}
}

// collectInvariant walks the tree checking that every internal signature
// dominates its children (Lemma 1 precondition).
func checkDomination(t *testing.T, n *node) {
	t.Helper()
	var kids []*Signature
	if n.leaf {
		for _, e := range n.entries {
			kids = append(kids, &e.Sig)
		}
	} else {
		for _, c := range n.children {
			checkDomination(t, c)
			kids = append(kids, &c.sig)
		}
	}
	for _, k := range kids {
		if k.Pl > n.sig.Pl+1e-12 || k.Ps > n.sig.Ps+1e-12 {
			t.Fatalf("child Pl/Ps exceeds aggregate: %v/%v > %v/%v", k.Pl, k.Ps, n.sig.Pl, n.sig.Ps)
		}
		if k.ProdTotal < n.sig.ProdTotal-1e-12 || k.EntTotal < n.sig.EntTotal-1e-12 {
			t.Fatalf("child total below aggregate min")
		}
		for i, v := range k.ProdCounts {
			if v > n.sig.ProdCounts[i]+1e-12 {
				t.Fatalf("prod count %d: child %v > agg %v", i, v, n.sig.ProdCounts[i])
			}
		}
		for i, v := range k.EntCounts {
			if v > n.sig.EntCounts[i]+1e-12 {
				t.Fatalf("ent count %d: child %v > agg %v", i, v, n.sig.EntCounts[i])
			}
		}
	}
}

func TestDominationInvariantAfterInserts(t *testing.T) {
	tr, _ := buildTree(t, 150, 4, 5)
	checkDomination(t, tr.root)
}

func TestDominationInvariantAfterUpdates(t *testing.T) {
	tr, rng := buildTree(t, 80, 4, 6)
	for i := 0; i < 200; i++ {
		u := fmt.Sprintf("u%03d", rng.Intn(80))
		tr.Update(u, randomSignature(4, 6, rng))
	}
	checkDomination(t, tr.root)
}

func TestUpperBoundHoldsForAllEntries(t *testing.T) {
	// R(root) must upper-bound R(leaf) for every user and many queries —
	// the Lemma 2 statement, via the Score function.
	tr, rng := buildTree(t, 60, 4, 7)
	for trial := 0; trial < 50; trial++ {
		q := randomQuery(4, 6, rng)
		rootScore := tr.RootScore(q)
		for _, u := range tr.Users() {
			sig, _ := tr.Get(u)
			if s := Score(&sig, q); s > rootScore+1e-9 {
				t.Fatalf("leaf %s score %v exceeds root bound %v", u, s, rootScore)
			}
		}
	}
}

func TestSearchMatchesSequentialScan(t *testing.T) {
	tr, rng := buildTree(t, 120, 5, 8)
	for trial := 0; trial < 30; trial++ {
		q := randomQuery(4, 6, rng)
		tqs := []TreeQuery{{Tree: tr, Query: q}}
		for _, k := range []int{1, 5, 10, 30} {
			got, _ := Search(tqs, k)
			want := SequentialScan(tqs, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d k=%d:\n got %v\nwant %v", trial, k, got, want)
			}
		}
	}
}

func TestSearchAcrossMultipleTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var tqs []TreeQuery
	for b := 0; b < 3; b++ {
		prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
		ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
		tr := New(b, "sports", prod, ent, 4)
		for i := 0; i < 40; i++ {
			tr.Insert(fmt.Sprintf("b%du%03d", b, i), randomSignature(4, 6, rng))
		}
		tqs = append(tqs, TreeQuery{Tree: tr, Query: randomQuery(4, 6, rng)})
	}
	got, _ := Search(tqs, 10)
	want := SequentialScan(tqs, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multi-tree mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestSearchEmptyTree(t *testing.T) {
	prod := NewUniverse(nil)
	ent := NewUniverse(nil)
	tr := New(0, "c", prod, ent, 4)
	got, _ := Search([]TreeQuery{{Tree: tr, Query: &Query{Mu: 10, ProdIdx: -1}}}, 5)
	if len(got) != 0 {
		t.Fatalf("results from empty tree: %v", got)
	}
	if !math.IsInf(tr.RootScore(&Query{Mu: 10, ProdIdx: -1}), -1) {
		t.Fatal("empty tree root score not -Inf")
	}
}

func TestSearchPrunes(t *testing.T) {
	// Clustered users (as the CPPse user blocks produce): archetype
	// signatures with small noise. The upper bound must let the search
	// skip most entries.
	rng := rand.New(rand.NewSource(10))
	prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
	ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
	tr := New(0, "c", prod, ent, 6)
	archetypes := make([]Signature, 5)
	for a := range archetypes {
		archetypes[a] = randomSignature(4, 6, rng)
	}
	for i := 0; i < 300; i++ {
		sig := archetypes[i%5].Clone()
		sig.Pl = clamp01(sig.Pl + (rng.Float64()-0.5)*0.05)
		sig.Ps = clamp01(sig.Ps + (rng.Float64()-0.5)*0.05)
		for j := range sig.EntCounts {
			sig.EntCounts[j] += float64(rng.Intn(2))
			sig.EntTotal++
		}
		tr.Insert(fmt.Sprintf("u%03d", i), sig)
	}
	q := randomQuery(4, 6, rng)
	res, stats := Search([]TreeQuery{{Tree: tr, Query: q}}, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if stats.EntriesScored >= 300 {
		t.Errorf("no pruning: scored %d of 300", stats.EntriesScored)
	}
	if stats.EntriesScored+stats.EntriesSkipped == 0 {
		t.Errorf("stats not recorded: %+v", stats)
	}
}

func clamp01(v float64) float64 {
	if v < 0.01 {
		return 0.01
	}
	if v > 1 {
		return 1
	}
	return v
}

func TestScoreMonotoneInCounts(t *testing.T) {
	base := Signature{
		Pl: 0.3, Ps: 0.2,
		ProdCounts: []float64{5, 0}, ProdTotal: 5,
		EntCounts: []float64{3, 1}, EntTotal: 4,
	}
	more := base.Clone()
	more.ProdCounts[0] = 10
	q := &Query{ProdIdx: 0, BgProd: 0.05, Ents: []WeightedIdx{{0, 1}}, BgEnt: 0.05, Mu: 10, LambdaS: 0.4}
	if Score(&more, q) <= Score(&base, q) {
		t.Error("score not monotone in producer count")
	}
	moreEnt := base.Clone()
	moreEnt.EntCounts[0] = 9
	if Score(&moreEnt, q) <= Score(&base, q) {
		t.Error("score not monotone in entity count")
	}
	lessTotal := base.Clone()
	lessTotal.EntTotal = 2
	if Score(&lessTotal, q) <= Score(&base, q) {
		t.Error("score not decreasing in entity total")
	}
}

func TestScoreHandlesMissingProducer(t *testing.T) {
	sig := Signature{Pl: 0.3, Ps: 0.2, ProdCounts: []float64{1}, ProdTotal: 1,
		EntCounts: []float64{1}, EntTotal: 1}
	q := &Query{ProdIdx: -1, BgProd: 0.02, Ents: nil, BgEnt: 0.01, Mu: 10, LambdaS: 0.4}
	s := Score(&sig, q)
	if math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("score = %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Signature{ProdCounts: []float64{1, 2}, EntCounts: []float64{3}}
	c := s.Clone()
	c.ProdCounts[0] = 99
	c.EntCounts[0] = 99
	if s.ProdCounts[0] == 99 || s.EntCounts[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}

// Property: for random trees and queries, Search == SequentialScan for
// random k. This is the no-false-pruning guarantee end to end.
func TestSearchEquivalenceProperty(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := int(kRaw%20) + 1
		n := int(nRaw%100) + 5
		rng := rand.New(rand.NewSource(seed))
		prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
		ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
		tr := New(0, "c", prod, ent, 4)
		for i := 0; i < n; i++ {
			tr.Insert(fmt.Sprintf("u%03d", i), randomSignature(4, 6, rng))
		}
		q := randomQuery(4, 6, rng)
		tqs := []TreeQuery{{Tree: tr, Query: q}}
		got, _ := Search(tqs, k)
		want := SequentialScan(tqs, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: domination invariant holds after any interleaving of inserts
// and updates.
func TestDominationProperty(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		prod := NewUniverse([]string{"p0", "p1"})
		ent := NewUniverse([]string{"e0", "e1", "e2"})
		tr := New(0, "c", prod, ent, 3)
		users := 0
		for _, op := range ops {
			if op%3 == 0 && users > 0 {
				tr.Update(fmt.Sprintf("u%d", int(op)%users), randomSignature(2, 3, rng))
			} else {
				tr.Insert(fmt.Sprintf("u%d", users), randomSignature(2, 3, rng))
				users++
			}
		}
		ok := true
		var walk func(n *node)
		walk = func(n *node) {
			var kids []*Signature
			if n.leaf {
				for _, e := range n.entries {
					kids = append(kids, &e.Sig)
				}
			} else {
				for _, c := range n.children {
					walk(c)
					kids = append(kids, &c.sig)
				}
			}
			for _, k := range kids {
				if k.Pl > n.sig.Pl+1e-12 || k.ProdTotal < n.sig.ProdTotal-1e-12 {
					ok = false
				}
			}
		}
		walk(tr.root)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSearch(b *testing.B) {
	tr, rng := buildTree(b, 2000, 8, 11)
	q := randomQuery(4, 6, rng)
	tqs := []TreeQuery{{Tree: tr, Query: q}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Search(tqs, 30)
	}
}

func BenchmarkSequentialScan(b *testing.B) {
	tr, rng := buildTree(b, 2000, 8, 11)
	q := randomQuery(4, 6, rng)
	tqs := []TreeQuery{{Tree: tr, Query: q}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SequentialScan(tqs, 30)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
	ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
	tr := New(0, "c", prod, ent, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(fmt.Sprintf("u%d", i), randomSignature(4, 6, rng))
	}
}

func TestDeleteRemovesUser(t *testing.T) {
	tr, rng := buildTree(t, 60, 4, 21)
	if !tr.Delete("u010") {
		t.Fatal("Delete returned false for existing user")
	}
	if tr.Has("u010") || tr.Len() != 59 {
		t.Fatalf("user still present after delete: len=%d", tr.Len())
	}
	if tr.Delete("u010") {
		t.Fatal("double delete returned true")
	}
	if tr.Delete("ghost") {
		t.Fatal("deleting ghost returned true")
	}
	// Invariants hold and search still matches scan.
	checkDomination(t, tr.root)
	q := randomQuery(4, 6, rng)
	tqs := []TreeQuery{{Tree: tr, Query: q}}
	got, _ := Search(tqs, 10)
	want := SequentialScan(tqs, 10)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-delete mismatch:\n got %v\nwant %v", got, want)
	}
	for _, r := range got {
		if r.UserID == "u010" {
			t.Fatal("deleted user still returned")
		}
	}
}

func TestDeleteAllUsers(t *testing.T) {
	tr, rng := buildTree(t, 25, 4, 22)
	for _, u := range tr.Users() {
		if !tr.Delete(u) {
			t.Fatalf("Delete(%s) failed", u)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	q := randomQuery(4, 6, rng)
	got, _ := Search([]TreeQuery{{Tree: tr, Query: q}}, 5)
	if len(got) != 0 {
		t.Fatalf("results from emptied tree: %v", got)
	}
	// Tree remains usable.
	tr.Insert("reborn", randomSignature(4, 6, rng))
	if tr.Len() != 1 {
		t.Fatal("insert after full delete failed")
	}
}
