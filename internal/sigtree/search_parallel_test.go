package sigtree

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// buildForest builds nTrees trees of nUsers each with per-tree queries —
// the multi-partition workload SearchParallel fans out over.
func buildForest(t testing.TB, nTrees, nUsers int, seed int64) []TreeQuery {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var tqs []TreeQuery
	for b := 0; b < nTrees; b++ {
		prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
		ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
		tr := New(b, "c", prod, ent, 6)
		for i := 0; i < nUsers; i++ {
			tr.Insert(fmt.Sprintf("b%02du%04d", b, i), randomSignature(4, 6, rng))
		}
		tqs = append(tqs, TreeQuery{Tree: tr, Query: randomQuery(4, 6, rng)})
	}
	return tqs
}

// TestSearchParallelEquivalence is the core determinism contract: for
// seeded random forests, SearchParallel must return bit-identical users,
// scores and tie-break order to Search and SequentialScan at every
// parallelism level.
func TestSearchParallelEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 23, 99} {
		tqs := buildForest(t, 7, 60, seed)
		for _, k := range []int{1, 5, 10, 30, 1000} {
			want, _ := Search(tqs, k)
			scan := SequentialScan(tqs, k)
			if !reflect.DeepEqual(want, scan) {
				t.Fatalf("seed %d k=%d: Search != SequentialScan", seed, k)
			}
			for _, p := range []int{1, 2, 8} {
				got, stats := SearchParallel(tqs, k, p)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d k=%d parallelism=%d:\n got %v\nwant %v", seed, k, p, got, want)
				}
				if p > 1 && len(tqs) >= 2 && stats.Partitions == 0 {
					t.Fatalf("seed %d k=%d parallelism=%d: expected parallel path", seed, k, p)
				}
			}
		}
	}
}

// Ties in score must break identically across paths. Duplicate the same
// signature under different user IDs across trees to force exact ties.
func TestSearchParallelTieBreaking(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shared := randomSignature(4, 6, rng)
	q := randomQuery(4, 6, rng)
	var tqs []TreeQuery
	for b := 0; b < 4; b++ {
		prod := NewUniverse([]string{"p0", "p1", "p2", "p3"})
		ent := NewUniverse([]string{"e0", "e1", "e2", "e3", "e4", "e5"})
		tr := New(b, "c", prod, ent, 4)
		for i := 0; i < 12; i++ {
			tr.Insert(fmt.Sprintf("t%02du%02d", b, i), shared.Clone())
		}
		tqs = append(tqs, TreeQuery{Tree: tr, Query: q})
	}
	want, _ := Search(tqs, 10)
	for _, p := range []int{2, 4, 8} {
		got, _ := SearchParallel(tqs, 10, p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism=%d tie-break mismatch:\n got %v\nwant %v", p, got, want)
		}
	}
	// All scores tie, so the order must be pure user-ID ascending.
	for i := 1; i < len(want); i++ {
		if want[i-1].UserID >= want[i].UserID {
			t.Fatalf("tie order not user-ID ascending: %v", want)
		}
	}
}

func TestSearchParallelDegenerate(t *testing.T) {
	// Empty input, empty trees, parallelism larger than tree count.
	if got, _ := SearchParallel(nil, 5, 4); len(got) != 0 {
		t.Fatalf("results from empty input: %v", got)
	}
	prod, ent := NewUniverse(nil), NewUniverse(nil)
	empty := New(0, "c", prod, ent, 4)
	tqs := []TreeQuery{{Tree: empty, Query: &Query{Mu: 10, ProdIdx: -1}}}
	if got, _ := SearchParallel(tqs, 5, 8); len(got) != 0 {
		t.Fatalf("results from empty tree: %v", got)
	}
	full := buildForest(t, 3, 20, 11)
	want, _ := Search(full, 5)
	got, _ := SearchParallel(full, 5, 64) // clamped to len(tqs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oversubscribed parallelism mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestSearchZeroAlloc pins the zero-allocation contract of the sequential
// query core: steady-state Search allocates only the result slice.
func TestSearchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tqs := buildForest(t, 4, 200, 13)
	Search(tqs, 10) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		Search(tqs, 10)
	})
	if allocs > 2 {
		t.Fatalf("Search allocates %.1f objects/op, want <= 2 (result slice only)", allocs)
	}
}

func TestSearcherReuse(t *testing.T) {
	// One Searcher across differently-shaped runs must match fresh runs.
	s := NewSearcher()
	for _, seed := range []int64{3, 4} {
		tqs := buildForest(t, 5, 40, seed)
		for _, k := range []int{3, 17} {
			got, _ := s.Run(tqs, k, nil)
			want, _ := Search(tqs, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d k=%d: reused Searcher diverged", seed, k)
			}
		}
	}
}

func BenchmarkSearchParallel(b *testing.B) {
	tqs := buildForest(b, 16, 2000, 17)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SearchParallel(tqs, 30, p)
			}
		})
	}
}
