// search.go implements Algorithm 1 — branch-and-bound top-k over the
// extended signature trees — as a reusable, allocation-free Searcher plus
// a partitioned parallel front-end (SearchParallel). See DESIGN.md,
// "Parallel partitioned search".
//
// The query core is deliberately zero-allocation in steady state: the
// priority queue stores pqItem values in a reusable slab (no per-node
// heap boxing), the top-k accumulator recycles its backing array, and
// whole Searchers are pooled via sync.Pool. The only allocation a search
// performs is the result slice handed to the caller.
package sigtree

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"ssrec/internal/model"
)

// TreeQuery pairs a tree with the pseudo-query encoded for it.
type TreeQuery struct {
	Tree  *Tree
	Query *Query
}

// SearchStats reports pruning effectiveness for one search. For
// SearchParallel the counters are summed over all partitions.
type SearchStats struct {
	NodesVisited   int // internal/leaf nodes expanded
	EntriesScored  int // leaf entries whose exact score was computed
	EntriesSkipped int // pruned by the upper bound (never scored)
	Partitions     int // worker partitions used (0 = sequential path)
}

// Add accumulates another search's pruning counters (Partitions is a
// configuration echo, not a counter, and is left to the caller).
func (s *SearchStats) Add(o SearchStats) {
	s.NodesVisited += o.NodesVisited
	s.EntriesScored += o.EntriesScored
	s.EntriesSkipped += o.EntriesSkipped
}

// pqItem is one priority-queue element: an internal or leaf node of a
// tree, with the query it was scored against. Leaf entries are offered to
// the top-k accumulator directly and never enter the queue, so items are
// plain values and the queue is a flat slab.
type pqItem struct {
	score float64
	seq   int // FIFO tie-break for deterministic traversal
	node  *node
	q     *Query
}

// pqLess orders the max-heap: higher score first, earlier push on ties.
func pqLess(a, b *pqItem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.seq < b.seq
}

// Searcher owns the scratch state of one branch-and-bound run: the value
// slab of the priority queue and the top-k accumulator. A zero Searcher
// is ready to use; Search and SearchParallel draw them from an internal
// pool so steady-state queries do not allocate.
type Searcher struct {
	pq    []pqItem
	seq   int
	topk  topK
	stats SearchStats
}

var searcherPool = sync.Pool{New: func() any { return new(Searcher) }}

// NewSearcher returns a fresh standalone Searcher (callers that want to
// manage reuse themselves; Search/SearchParallel pool internally).
func NewSearcher() *Searcher { return new(Searcher) }

func (s *Searcher) reset(k int) {
	s.pq = s.pq[:0]
	s.seq = 0
	s.stats = SearchStats{}
	s.topk.reset(k)
}

// push inserts a value item into the max-heap slab.
func (s *Searcher) push(it pqItem) {
	it.seq = s.seq
	s.seq++
	s.pq = append(s.pq, it)
	i := len(s.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(&s.pq[i], &s.pq[parent]) {
			break
		}
		s.pq[i], s.pq[parent] = s.pq[parent], s.pq[i]
		i = parent
	}
}

// pop removes the best item.
func (s *Searcher) pop() pqItem {
	top := s.pq[0]
	n := len(s.pq) - 1
	s.pq[0] = s.pq[n]
	s.pq[n] = pqItem{} // release node pointer
	s.pq = s.pq[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && pqLess(&s.pq[l], &s.pq[best]) {
			best = l
		}
		if r < n && pqLess(&s.pq[r], &s.pq[best]) {
			best = r
		}
		if best == i {
			break
		}
		s.pq[i], s.pq[best] = s.pq[best], s.pq[i]
		i = best
	}
	return top
}

// lowerBound is the effective pruning bound: the worst score of the local
// top-k once full, raised further by the shared cross-partition bound
// when one is attached.
func (s *Searcher) lowerBound(shared *Bound) float64 {
	lb := s.topk.WorstScore()
	if shared != nil {
		if g := shared.Load(); g > lb {
			lb = g
		}
	}
	return lb
}

// Run executes Algorithm 1 over the given trees, pruning against the
// optional shared lower bound, and returns the local top-k best-first.
//
// Correctness under a shared bound: the bound is the maximum over
// partitions of each partition's current k-th best exact score, which is
// a monotone lower bound on the *global* k-th best exact score (the
// global candidate pool is a superset of every partition's). Pruning is
// strict (<), so an entry at exactly the final k-th score is always
// expanded and user-ID tie-breaking stays identical to the sequential
// path.
func (s *Searcher) Run(tqs []TreeQuery, k int, shared *Bound) ([]model.Recommendation, SearchStats) {
	recs, stats, _ := s.RunCtx(nil, tqs, k, shared)
	return recs, stats
}

// ctxCheckEvery is how many priority-queue pops pass between context
// checks: frequent enough that cancellation lands within microseconds,
// rare enough that ctx.Err's mutex never shows up in profiles.
const ctxCheckEvery = 64

// RunCtx is Run with cooperative cancellation: the search loop polls
// ctx every ctxCheckEvery node expansions and, when the context is
// done, abandons the traversal and returns ctx.Err() with whatever the
// accumulator held (partial, best-effort results). A nil ctx disables
// the checks and is exactly Run.
func (s *Searcher) RunCtx(ctx context.Context, tqs []TreeQuery, k int, shared *Bound) ([]model.Recommendation, SearchStats, error) {
	s.reset(k)
	for _, tq := range tqs {
		if tq.Tree.Len() == 0 {
			continue
		}
		s.push(pqItem{score: Score(&tq.Tree.root.sig, tq.Query), node: tq.Tree.root, q: tq.Query})
	}
	var err error
	pops := 0
	for len(s.pq) > 0 {
		if ctx != nil {
			if pops%ctxCheckEvery == 0 {
				if err = ctx.Err(); err != nil {
					break
				}
			}
			pops++
		}
		it := s.pop()
		lb := s.lowerBound(shared)
		if it.score < lb {
			// Max-ordered queue: nothing left can beat the bound.
			s.stats.EntriesSkipped += subtreeSize(it.node) + s.remainingEntries()
			break
		}
		n := it.node
		s.stats.NodesVisited++
		if n.leaf {
			for i := range n.entries {
				e := n.entries[i]
				s.topk.Offer(e.UserID, Score(&e.Sig, it.q))
				s.stats.EntriesScored++
			}
			if shared != nil && s.topk.Full() {
				shared.Raise(s.topk.WorstScore())
			}
			continue
		}
		for _, c := range n.children {
			cs := Score(&c.sig, it.q)
			// Score ties with the bound are still expanded so user-ID
			// tie-breaking matches a sequential scan exactly.
			if cs >= lb {
				s.push(pqItem{score: cs, node: c, q: it.q})
			} else {
				s.stats.EntriesSkipped += subtreeSize(c)
			}
		}
	}
	s.stats.Partitions = 0
	// Drop node references left by an early break so pooled Searchers
	// don't pin replaced index structures.
	s.pq = s.pq[:cap(s.pq)]
	clear(s.pq)
	s.pq = s.pq[:0]
	return s.topk.Sorted(), s.stats, err
}

func (s *Searcher) remainingEntries() int {
	n := 0
	for i := range s.pq {
		n += subtreeSize(s.pq[i].node)
	}
	return n
}

// Search runs the KNN of Algorithm 1 across the matched trees and returns
// the top-k users by R(v, u), best first. It never returns a user whose
// exact score is below a pruned candidate's true score (no false pruning:
// Lemmas 1–2).
func Search(tqs []TreeQuery, k int) ([]model.Recommendation, SearchStats) {
	recs, stats, _ := SearchCtx(nil, tqs, k)
	return recs, stats
}

// SearchCtx is Search with cooperative cancellation (see Searcher.RunCtx);
// on cancellation it returns ctx.Err() along with partial results.
func SearchCtx(ctx context.Context, tqs []TreeQuery, k int) ([]model.Recommendation, SearchStats, error) {
	s := searcherPool.Get().(*Searcher)
	recs, stats, err := s.RunCtx(ctx, tqs, k, nil)
	searcherPool.Put(s)
	return recs, stats, err
}

// Bound is a monotonically increasing float64 shared by the partitions of
// one parallel search — and, through SearchParallelBoundCtx, by the shards
// of one scatter-gather deployment: the best global lower bound on the
// final k-th exact score published so far. Create with NewBound; the zero
// value is NOT ready (the bound must start at -Inf).
//
// Bound is the wire protocol of cross-shard pruning: an RPC shard keeps a
// local Bound that its searcher consults, and streams Raise values to and
// from the router. Because Raise is a lock-free monotone max, updates may
// be applied in any order, duplicated or delayed without affecting
// correctness — a late bound only costs pruning opportunity, never
// results.
type Bound struct{ bits atomic.Uint64 }

// NewBound returns a shared bound initialised to -Inf (nothing pruned yet).
func NewBound() *Bound {
	lb := &Bound{}
	lb.bits.Store(math.Float64bits(math.Inf(-1)))
	return lb
}

// Load returns the current bound.
func (l *Bound) Load() float64 { return math.Float64frombits(l.bits.Load()) }

// Raise lifts the bound to v if v is higher (lock-free monotone max).
func (l *Bound) Raise(v float64) {
	for {
		old := l.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if l.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SearchParallel is the partitioned Algorithm 1: candidate trees are
// dealt round-robin to `parallelism` workers, each running the same
// branch-and-bound as Search over its partition while pruning against a
// shared atomic lower bound (each partition's k-th best raises the bound
// for all others), and the per-partition top-k heaps are merged with the
// global comparator. Results — users, scores and tie-break order — are
// bit-identical to Search and SequentialScan for every parallelism level.
//
// parallelism <= 1 (or fewer than two candidate trees) falls back to the
// sequential path.
func SearchParallel(tqs []TreeQuery, k, parallelism int) ([]model.Recommendation, SearchStats) {
	recs, stats, _ := SearchParallelCtx(nil, tqs, k, parallelism)
	return recs, stats
}

// SearchParallelCtx is SearchParallel with cooperative cancellation: every
// partition worker polls the context (see Searcher.RunCtx) and bails out
// early when it is done, after which the call reports ctx.Err() and the
// merged partial results must not be served as exact.
func SearchParallelCtx(ctx context.Context, tqs []TreeQuery, k, parallelism int) ([]model.Recommendation, SearchStats, error) {
	return SearchParallelBoundCtx(ctx, tqs, k, parallelism, nil)
}

// SearchParallelBoundCtx is SearchParallelCtx pruning against (and
// raising) a caller-supplied shared bound — the entry point of the
// cross-shard protocol: every shard of a scatter-gather deployment runs
// its partition of the candidate trees through here with the SAME Bound,
// so one shard's k-th best exact score prunes every other shard's
// traversal. A nil bound is created internally (the single-process case).
//
// The correctness argument is the same as SearchParallel's: each
// participant's k-th best exact score is a monotone lower bound on the
// global k-th best (the global candidate pool is a superset of every
// participant's), pruning is strict, and ties at the bound are still
// expanded — so the merged results are bit-identical to a sequential scan
// no matter how participants are partitioned, locally or across shards.
func SearchParallelBoundCtx(ctx context.Context, tqs []TreeQuery, k, parallelism int, shared *Bound) ([]model.Recommendation, SearchStats, error) {
	if parallelism > len(tqs) {
		parallelism = len(tqs)
	}
	if parallelism <= 1 || len(tqs) < 2 {
		s := searcherPool.Get().(*Searcher)
		recs, stats, err := s.RunCtx(ctx, tqs, k, shared)
		searcherPool.Put(s)
		return recs, stats, err
	}
	parts := make([][]TreeQuery, parallelism)
	for i, tq := range tqs {
		w := i % parallelism
		parts[w] = append(parts[w], tq)
	}
	if shared == nil {
		shared = NewBound()
	}
	partRecs := make([][]model.Recommendation, parallelism)
	partStats := make([]SearchStats, parallelism)
	partErrs := make([]error, parallelism)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := searcherPool.Get().(*Searcher)
			partRecs[w], partStats[w], partErrs[w] = s.RunCtx(ctx, parts[w], k, shared)
			searcherPool.Put(s)
		}(w)
	}
	wg.Wait()
	// Deterministic merge: each partition's top-k is already exact for its
	// candidate subset, and the Offer comparator (score desc, user-ID asc)
	// is order-independent, so folding partitions in index order yields
	// the global top-k with sequential tie-breaking.
	merged := newTopK(k)
	var stats SearchStats
	var err error
	for w := 0; w < parallelism; w++ {
		for _, r := range partRecs[w] {
			merged.Offer(r.UserID, r.Score)
		}
		stats.Add(partStats[w])
		if err == nil && partErrs[w] != nil {
			err = partErrs[w]
		}
	}
	stats.Partitions = parallelism
	return merged.Sorted(), stats, err
}

// MergeTopK folds several per-partition top-k lists into the global top-k
// using the search comparator (score descending, user-ID ascending tie
// break). Because the Offer comparator is order-independent and every
// input list is exact for its own candidate subset, folding lists in any
// order yields the global top-k with sequential tie-breaking — this is the
// gather step of the sharded scatter-gather router.
func MergeTopK(k int, lists ...[]model.Recommendation) []model.Recommendation {
	merged := newTopK(k)
	for _, l := range lists {
		for _, r := range l {
			merged.Offer(r.UserID, r.Score)
		}
	}
	return merged.Sorted()
}

// SequentialScan scores every leaf entry of every tree directly — the
// reference implementation used to verify the index returns identical
// results, and the no-pruning arm of the AblationPruning benchmark.
func SequentialScan(tqs []TreeQuery, k int) []model.Recommendation {
	topk := newTopK(k)
	for _, tq := range tqs {
		for _, e := range tq.Tree.byUser {
			topk.Offer(e.UserID, Score(&e.Sig, tq.Query))
		}
	}
	return topk.Sorted()
}

// ---- top-k accumulator (worst-first min-heap) ----

type topK struct {
	k     int
	items []model.Recommendation
}

func newTopK(k int) *topK {
	t := &topK{}
	t.reset(k)
	return t
}

func (t *topK) reset(k int) {
	if k < 1 {
		k = 1
	}
	t.k = k
	t.items = t.items[:0]
}

func (t *topK) Full() bool { return len(t.items) >= t.k }

func (t *topK) WorstScore() float64 {
	if !t.Full() {
		return math.Inf(-1)
	}
	return t.items[0].Score
}

func (t *topK) Offer(userID string, score float64) {
	r := model.Recommendation{UserID: userID, Score: score}
	if len(t.items) < t.k {
		t.items = append(t.items, r)
		i := len(t.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(t.items[i], t.items[parent]) {
				break
			}
			t.items[i], t.items[parent] = t.items[parent], t.items[i]
			i = parent
		}
		return
	}
	if !model.ByScoreDesc(r, t.items[0]) {
		return
	}
	t.items[0] = r
	i, n := 0, len(t.items)
	for {
		l, r2 := 2*i+1, 2*i+2
		m := i
		if l < n && worse(t.items[l], t.items[m]) {
			m = l
		}
		if r2 < n && worse(t.items[r2], t.items[m]) {
			m = r2
		}
		if m == i {
			return
		}
		t.items[i], t.items[m] = t.items[m], t.items[i]
		i = m
	}
}

func worse(a, b model.Recommendation) bool { return model.ByScoreDesc(b, a) }

func (t *topK) Sorted() []model.Recommendation {
	out := append([]model.Recommendation(nil), t.items...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && model.ByScoreDesc(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
