// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation (Zhou et al., ICDE 2019, §VI), plus the ablation
// benches DESIGN.md calls out. Each benchmark times the experiment at
// benchmark scale and prints the regenerated rows once, so
//
//	go test -bench=. -benchmem
//
// reproduces every reported series. cmd/ssrec-bench runs the same
// experiments at full protocol scale with nicer formatting.
package ssrec

import (
	"fmt"
	"sync"
	"testing"

	"ssrec/internal/experiments"
)

// benchOpts runs the experiments at the smallest scale where the paper's
// qualitative shapes (system ordering, latency gap, parameter optima) are
// stable; cmd/ssrec-bench raises the scale for the full protocol.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.3, Seed: 42, Quick: true, Ks: []int{5, 10, 20, 30}}
}

var printedMu sync.Mutex
var printed = map[string]bool{}

// printOnce emits an experiment's rows exactly once per test binary run.
func printOnce(name string, f func()) {
	printedMu.Lock()
	defer printedMu.Unlock()
	if printed[name] {
		return
	}
	printed[name] = true
	fmt.Printf("\n--- %s ---\n", name)
	f()
}

func BenchmarkTable2SignatureSize(b *testing.B) {
	o := benchOpts()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(o)
	}
	b.StopTimer()
	printOnce("Table II: signature size vs user blocks", func() {
		for _, r := range rows {
			fmt.Printf("blocks=%-3d maxEntity=%-5d maxProducer=%d\n", r.Blocks, r.MaxEntity, r.MaxProducer)
		}
	})
}

func BenchmarkTable3DatasetOverview(b *testing.B) {
	o := benchOpts()
	var rows []fmt.Stringer
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, s := range experiments.Table3(o) {
			rows = append(rows, s)
		}
	}
	b.StopTimer()
	printOnce("Table III: dataset overview", func() {
		for _, r := range rows {
			fmt.Println(r)
		}
	})
}

func BenchmarkFig5BiHMMvsHMM(b *testing.B) {
	o := benchOpts()
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig5(o)
	}
	b.StopTimer()
	printOnce("Fig 5: BiHMM vs HMM accuracy by optimal state count", func() {
		for _, r := range rows {
			fmt.Printf("%-9s states=%d users=%-3d HMM=%.3f BiHMM=%.3f\n",
				r.Dataset, r.States, r.Users, r.HMM, r.BiHMM)
		}
	})
}

func BenchmarkFig6WindowSize(b *testing.B) {
	o := benchOpts()
	var rows []experiments.SweepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig6(o, "YTube")
	}
	b.StopTimer()
	printOnce("Fig 6: effect of short-term window size |W| (YTube)", func() {
		for _, r := range rows {
			fmt.Printf("|W|=%-3.0f %s\n", r.X, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	})
}

func BenchmarkFig7LambdaS(b *testing.B) {
	o := benchOpts()
	var rows []experiments.SweepRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig7(o, "YTube")
	}
	b.StopTimer()
	printOnce("Fig 7: effect of short-term weight λs (YTube, |W|=5)", func() {
		for _, r := range rows {
			fmt.Printf("λs=%-5.2f %s\n", r.X, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	})
}

func BenchmarkFig8Effectiveness(b *testing.B) {
	o := benchOpts()
	var rows []experiments.SystemRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig8(o)
	}
	b.StopTimer()
	printOnce("Fig 8: effectiveness comparison (CTT / UCD / ssRec-ne / ssRec)", func() {
		for _, r := range rows {
			fmt.Printf("%-9s %-9s %s\n", r.Dataset, r.System, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	})
}

func BenchmarkFig9ProfileUpdates(b *testing.B) {
	o := benchOpts()
	var rows []experiments.SystemRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig9(o)
	}
	b.StopTimer()
	printOnce("Fig 9: effect of user profile updates (ssRec-nu vs ssRec)", func() {
		for _, r := range rows {
			fmt.Printf("%-9s %-9s %s\n", r.Dataset, r.System, experiments.FormatPAtK(r.PAtK, o.Ks))
		}
	})
}

func BenchmarkFig10Efficiency(b *testing.B) {
	o := benchOpts()
	var rows []experiments.LatencyRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig10(o)
	}
	b.StopTimer()
	printOnce("Fig 10: per-item response time vs partitions (k=30)", func() {
		for _, r := range rows {
			fmt.Printf("%-9s %-12s partitions=%d perItem=%v\n", r.Dataset, r.System, r.Partitions, r.PerItem)
		}
	})
}

func BenchmarkFig11UpdateCost(b *testing.B) {
	o := benchOpts()
	var rows []experiments.UpdateRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fig11(o)
	}
	b.StopTimer()
	printOnce("Fig 11: cumulative index update cost vs update size", func() {
		for _, r := range rows {
			fmt.Printf("%-9s partitions=%d total=%v\n", r.Dataset, r.Partitions, r.Total)
		}
	})
}

// benchRecommender memoizes one trained engine per partition level so the
// BenchmarkRecommendParallel sub-benchmarks don't retrain per run.
var benchRecommenders = map[int]*Recommender{}
var benchQueries []Item
var benchRecMu sync.Mutex

func benchRecommender(b *testing.B, parallelism int) (*Recommender, []Item) {
	b.Helper()
	benchRecMu.Lock()
	defer benchRecMu.Unlock()
	rec := benchRecommenders[parallelism]
	if rec == nil {
		ds := GenerateYTubeLike(0.5, 42)
		rec = New(Config{Categories: ds.Categories(), Parallelism: parallelism,
			TrainMaxIter: 5, Restarts: 1, Seed: 42})
		if err := rec.TrainDataset(ds, 1.0/3); err != nil {
			b.Fatalf("train: %v", err)
		}
		items := ds.Items()
		for _, v := range items {
			rec.RegisterItem(v)
		}
		benchRecommenders[parallelism] = rec
		if benchQueries == nil {
			benchQueries = items[len(items)-200:]
		}
	}
	return rec, benchQueries
}

// BenchmarkRecommendParallel reproduces the Fig 10 partition sweep with
// real goroutine partitions: per-item recommendation time (k=30) as the
// intra-query worker count grows. On multi-core hardware the per-item
// time drops with partitions; allocations stay flat (the query core is
// allocation-free at every level).
func BenchmarkRecommendParallel(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("partitions=%d", p), func(b *testing.B) {
			rec, queries := benchRecommender(b, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Recommend(queries[i%len(queries)], 30)
			}
		})
	}
}

// BenchmarkRecommendThroughput measures concurrent serving: b.RunParallel
// issues overlapping Recommend calls against the engine's read-locked
// query path (sequential per-query core, concurrency across requests).
func BenchmarkRecommendThroughput(b *testing.B) {
	rec, queries := benchRecommender(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rec.Recommend(queries[i%len(queries)], 30)
			i++
		}
	})
}

func BenchmarkAblationPruning(b *testing.B) {
	o := benchOpts()
	var row experiments.PruningRow
	for i := 0; i < b.N; i++ {
		row = experiments.AblationPruning(o)
	}
	b.StopTimer()
	printOnce("Ablation: upper-bound pruning (Alg. 1) vs full scan", func() {
		fmt.Println(row)
	})
}

func BenchmarkAblationBlocks(b *testing.B) {
	o := benchOpts()
	var rows []experiments.BlocksRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationBlocks(o)
	}
	b.StopTimer()
	printOnce("Ablation: user block count vs tree width and latency", func() {
		for _, r := range rows {
			fmt.Println(r)
		}
	})
}

func BenchmarkAblationHash(b *testing.B) {
	o := benchOpts()
	var row experiments.HashRow
	for i := 0; i < b.N; i++ {
		row = experiments.AblationHash(o)
	}
	b.StopTimer()
	printOnce("Ablation: shift-add-xor chained table vs Go map", func() {
		fmt.Println(row)
	})
}

func BenchmarkAblationExpansion(b *testing.B) {
	o := benchOpts()
	var rows []experiments.ExpansionRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationExpansion(o)
	}
	b.StopTimer()
	printOnce("Ablation: entity expansion cost and effectiveness", func() {
		for _, r := range rows {
			fmt.Println(r)
		}
	})
}
