// Package ssrec is a Go implementation of the social stream recommendation
// framework of Zhou, Qin, Lu, Chen and Zhang, "Online Social Media
// Recommendation over Streams" (ICDE 2019, arXiv:1901.01003).
//
// Given a stream of social items (videos, posts — anything with a
// category, a producer and a set of description entities) and a stream of
// user–item interactions, a Recommender continuously answers: which k
// users should this new item be delivered to?
//
// The pipeline is the paper's:
//
//   - a Bi-Layer Hidden Markov Model (BiHMM) predicts each user's next
//     interesting category from their own trajectory and the hidden states
//     of the producers they follow (long-term and short-term interests);
//   - an entity-based matching function scores item–user relevance with
//     Dirichlet-smoothed MLEs and proximity-driven entity expansion for
//     diversity;
//   - the CPPse-index (chained shift-add-xor hash table over
//     category–entity pairs + extended signature trees per user block)
//     serves top-k queries with upper-bound pruning and supports dynamic
//     maintenance as profiles evolve.
//
// # Quick start (API v2)
//
//	ds := ssrec.GenerateYTubeLike(0.25, 42)          // or bring your own data
//	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
//	_ = rec.TrainDataset(ds, 2.0/6)                  // bootstrap on the first third
//	ctx := context.Background()
//	for _, v := range newItems {
//	    res, err := rec.RecommendCtx(ctx, v, ssrec.WithK(10))
//	    ...                                          // deliver v to res.Recommendations
//	}
//	// Stream maintenance: micro-batch interactions so the engine takes
//	// one write lock + one index flush per batch, not per event.
//	report, err := rec.ObserveBatch(ctx, observations)
//
// The batch-first calls (RecommendBatch, ObserveBatch) are the throughput
// path; the v1 per-item methods (Recommend, Observe) remain as thin
// equivalents without error reporting. Per-call behavior is tuned with
// functional options (WithK, WithParallelism, WithoutExpansion);
// failures surface as wrapped sentinel errors (ErrNotTrained,
// ErrUnknownCategory, ErrInvalidObservation) and honor context
// cancellation down to the index search loop.
//
// See the examples/ directory for runnable scenarios and DESIGN.md for the
// system inventory and the v1→v2 migration table.
package ssrec

import (
	"fmt"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/model"
)

// Core data types, shared with the internal packages.
type (
	// Item is a social item v = ⟨category, producer, entities⟩.
	Item = model.Item
	// Interaction is one user-item interaction event.
	Interaction = model.Interaction
	// Recommendation is one entry of a top-k user list.
	Recommendation = model.Recommendation
	// Config parameterises the recommender; zero values take the paper's
	// defaults (|W|=5, λs=0.4, 3+3 hidden states, expansion on).
	Config = core.Config
)

// API v2 types: the batch-first, context-aware query and ingestion surface.
type (
	// Result is one item's answer from RecommendCtx/RecommendBatch.
	Result = core.Result
	// Observation is one interaction prepared for ObserveBatch.
	Observation = core.Observation
	// BatchReport summarises one ObserveBatch call.
	BatchReport = core.BatchReport
	// ObservationError details one rejected ObserveBatch entry.
	ObservationError = core.ObservationError
	// Option is a per-call query option (WithK, WithParallelism,
	// WithoutExpansion).
	Option = core.Option
	// QueryOptions is the resolved option set an Option mutates.
	QueryOptions = core.QueryOptions
)

// Sentinel errors of the v2 API; match with errors.Is.
var (
	// ErrNotTrained is returned when a query arrives before training.
	ErrNotTrained = core.ErrNotTrained
	// ErrUnknownCategory marks an item outside the configured category
	// universe.
	ErrUnknownCategory = core.ErrUnknownCategory
	// ErrInvalidObservation marks a rejected ObserveBatch entry.
	ErrInvalidObservation = core.ErrInvalidObservation
)

// WithK sets the number of users a query returns (default core.DefaultK).
func WithK(k int) Option { return core.WithK(k) }

// WithParallelism overrides the partitioned-search worker count for one
// call; n <= 0 keeps the engine's configured value.
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithoutExpansion disables proximity entity expansion for one call.
func WithoutExpansion() Option { return core.WithoutExpansion() }

// Recommender is the assembled ssRec system.
type Recommender struct {
	*core.Engine
}

// New creates a recommender. Config.Categories is required.
func New(cfg Config) *Recommender {
	return &Recommender{Engine: core.New(cfg)}
}

// TrainDataset bootstraps the recommender on the leading fraction of a
// dataset's interaction stream (the paper trains on the first 2 of 6
// partitions, i.e. fraction 1/3).
func (r *Recommender) TrainDataset(ds *Dataset, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("ssrec: fraction %v out of (0,1]", fraction)
	}
	n := int(float64(len(ds.d.Interactions)) * fraction)
	return r.Engine.Train(ds.d.Items, ds.d.Interactions[:n], ds.d.Item)
}

// Evaluate runs the paper's stream-simulation protocol (6 timestamp
// partitions, train on 2, test on 4) against this recommender's fresh
// configuration and returns precision/latency metrics.
func Evaluate(cfg Config, ds *Dataset, ks []int) (EvalResult, error) {
	res, err := evalx.Run(core.New(cfg), ds.d, evalx.Setup{}, ks)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{
		System:             res.System,
		PAtK:               res.PAtK,
		ItemsTested:        res.ItemsTested,
		RecommendLatencyNs: res.RecommendLatency.Nanoseconds(),
		UpdateLatencyNs:    res.UpdateLatency.Nanoseconds(),
	}, nil
}

// EvalResult summarises one evaluation run.
type EvalResult struct {
	System             string
	PAtK               map[int]float64
	ItemsTested        int
	RecommendLatencyNs int64
	UpdateLatencyNs    int64
}

// Dataset is a collection of items and time-ordered interactions.
type Dataset struct {
	d *dataset.Dataset
}

// GenerateYTubeLike builds a synthetic dataset with the shape of the
// paper's YTube crawl (19 categories, many items, producer-driven
// consumer behavior). scale 1.0 ≈ laptop default; seed fixes the run.
func GenerateYTubeLike(scale float64, seed int64) *Dataset {
	cfg := dataset.YTubeConfig(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	return &Dataset{d: dataset.Generate(cfg)}
}

// GenerateMLensLike builds a synthetic dataset with the shape of the
// paper's derived MovieLens collection (15 categories, dense
// interactions per item).
func GenerateMLensLike(scale float64, seed int64) *Dataset {
	cfg := dataset.MLensConfig(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	return &Dataset{d: dataset.Generate(cfg)}
}

// Replicate produces a synthpop-style synthetic twin of a dataset
// (the paper's SynYTube/SynMLens construction).
func Replicate(src *Dataset, name string, seed int64) *Dataset {
	return &Dataset{d: dataset.Replicate(src.d, name, seed)}
}

// Name returns the dataset's name.
func (ds *Dataset) Name() string { return ds.d.Name }

// Categories returns the category universe.
func (ds *Dataset) Categories() []string { return append([]string(nil), ds.d.Categories...) }

// Items returns the items in timestamp order.
func (ds *Dataset) Items() []Item { return ds.d.Items }

// Interactions returns the interactions in timestamp order.
func (ds *Dataset) Interactions() []Interaction { return ds.d.Interactions }

// Item resolves an item by ID.
func (ds *Dataset) Item(id string) (Item, bool) { return ds.d.Item(id) }

// Summary returns the Table III row for the dataset.
func (ds *Dataset) Summary() string { return ds.d.ComputeStats().String() }

// SaveFile / LoadFile persist datasets as gzip-compressed gob.
func (ds *Dataset) SaveFile(path string) error { return ds.d.SaveFile(path) }

// LoadDataset reads a dataset written by SaveFile.
func LoadDataset(path string) (*Dataset, error) {
	d, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}
