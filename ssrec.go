// Package ssrec is a Go implementation of the social stream recommendation
// framework of Zhou, Qin, Lu, Chen and Zhang, "Online Social Media
// Recommendation over Streams" (ICDE 2019, arXiv:1901.01003).
//
// Given a stream of social items (videos, posts — anything with a
// category, a producer and a set of description entities) and a stream of
// user–item interactions, a Recommender continuously answers: which k
// users should this new item be delivered to?
//
// The pipeline is the paper's:
//
//   - a Bi-Layer Hidden Markov Model (BiHMM) predicts each user's next
//     interesting category from their own trajectory and the hidden states
//     of the producers they follow (long-term and short-term interests);
//   - an entity-based matching function scores item–user relevance with
//     Dirichlet-smoothed MLEs and proximity-driven entity expansion for
//     diversity;
//   - the CPPse-index (chained shift-add-xor hash table over
//     category–entity pairs + extended signature trees per user block)
//     serves top-k queries with upper-bound pruning and supports dynamic
//     maintenance as profiles evolve.
//
// # Quick start (API v2)
//
//	ds := ssrec.GenerateYTubeLike(0.25, 42)          // or bring your own data
//	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
//	_ = rec.TrainDataset(ds, 2.0/6)                  // bootstrap on the first third
//	ctx := context.Background()
//	for _, v := range newItems {
//	    res, err := rec.RecommendCtx(ctx, v, ssrec.WithK(10))
//	    ...                                          // deliver v to res.Recommendations
//	}
//	// Stream maintenance: micro-batch interactions so the engine takes
//	// one write lock + one index flush per batch, not per event.
//	report, err := rec.ObserveBatch(ctx, observations)
//
// The batch-first calls (RecommendBatch, ObserveBatch) are the throughput
// path; the v1 per-item methods (Recommend, Observe) remain as thin
// equivalents without error reporting. Per-call behavior is tuned with
// functional options (WithK, WithParallelism, WithoutExpansion);
// failures surface as wrapped sentinel errors (ErrNotTrained,
// ErrUnknownCategory, ErrInvalidObservation) and honor context
// cancellation down to the index search loop.
//
// # Sessions — the continuous profile
//
// OpenSession turns the request/response API into the paper's standing
// stream loop: one ordered full-duplex stream of pushed observations and
// asked items, answered in admission order, with every answer reflecting
// exactly the events pushed before it:
//
//	ses := rec.OpenSession(ctx)
//	go func() { for res := range ses.Results() { deliver(res) } }()
//	ses.Push(obs)                      // micro-batched ingest
//	ses.Ask(item, ssrec.WithK(10))     // answered after everything above
//	ses.Close()
//
// A session replay is bit-identical to hand-issued ObserveBatch /
// RecommendBatch calls at the same boundaries, on every deployment shape
// (the session conformance suites enforce it). Over HTTP the same
// protocol is POST /v2/session (NDJSON over h2c with credit-based flow
// control — see DESIGN.md, "Session protocol").
//
// # Scaling out
//
// Open with WithShards(n) serves the same API from an n-shard
// scatter-gather deployment: user blocks are partitioned across n engine
// shards, every query fans out under a shared score lower bound, and the
// results are observably identical to the single engine (enforced by the
// conformance suite in internal/shard):
//
//	rec := ssrec.Open(cfg, ssrec.WithShards(8))
//
// WithRemoteShards serves the same deployment from separate ssrec-shardd
// processes over the shard RPC transport (HTTP/2 + streamed bound
// updates, internal/shardrpc) — still observably identical, plus health
// probing and failover: an unreachable shard is excluded and calls carry
// ErrShardUnavailable beside their partial results until a snapshot
// handoff (Handoff) brings it back:
//
//	rec := ssrec.Open(cfg, ssrec.WithRemoteShards("10.0.0.1:9100", "10.0.0.2:9100"))
//	err := rec.Train(items, interactions, resolve) // trains once, boots every shardd
//
// See the examples/ directory for runnable scenarios, DESIGN.md for the
// system inventory and the v1→v2 migration table, and OPERATIONS.md for
// deployment topologies, failover semantics and the recovery runbook.
package ssrec

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"ssrec/internal/core"
	"ssrec/internal/dataset"
	"ssrec/internal/evalx"
	"ssrec/internal/model"
	"ssrec/internal/shard"
	"ssrec/internal/shardrpc"
)

// Core data types, shared with the internal packages.
type (
	// Item is a social item v = ⟨category, producer, entities⟩.
	Item = model.Item
	// Interaction is one user-item interaction event.
	Interaction = model.Interaction
	// Recommendation is one entry of a top-k user list.
	Recommendation = model.Recommendation
	// Config parameterises the recommender; zero values take the paper's
	// defaults (|W|=5, λs=0.4, 3+3 hidden states, expansion on).
	Config = core.Config
)

// API v2 types: the batch-first, context-aware query and ingestion surface.
type (
	// Result is one item's answer from RecommendCtx/RecommendBatch.
	Result = core.Result
	// Observation is one interaction prepared for ObserveBatch.
	Observation = core.Observation
	// BatchReport summarises one ObserveBatch call.
	BatchReport = core.BatchReport
	// ObservationError details one rejected ObserveBatch entry.
	ObservationError = core.ObservationError
	// Option is a per-call query option (WithK, WithParallelism,
	// WithoutExpansion).
	Option = core.Option
	// QueryOptions is the resolved option set an Option mutates.
	QueryOptions = core.QueryOptions
)

// Session types: the continuous-recommendation surface of OpenSession.
type (
	// Session is one ordered full-duplex recommendation stream (see
	// Recommender.OpenSession).
	Session = core.Session
	// SessionResult is one answer delivered on Session.Results.
	SessionResult = core.SessionResult
	// SessionOption configures OpenSession (WithSessionBatch,
	// WithAutoRecommend, ...).
	SessionOption = core.SessionOption
	// SessionStats snapshots a session's counters.
	SessionStats = core.SessionStats
)

// ErrSessionClosed is returned by session calls after Close.
var ErrSessionClosed = core.ErrSessionClosed

// WithSessionBatch sets a session's observation micro-batch size.
func WithSessionBatch(n int) SessionOption { return core.WithSessionBatch(n) }

// WithSessionLinger bounds how long a session's pending observations wait
// for a full micro-batch before being admitted anyway.
func WithSessionLinger(d time.Duration) SessionOption { return core.WithSessionLinger(d) }

// WithAutoRecommend answers every item first seen in a pushed observation
// with a top-k query, without a separate Ask — the paper's standing
// "which k users should receive this new item?" loop driven directly by
// the event stream.
func WithAutoRecommend(k int) SessionOption { return core.WithAutoRecommend(k) }

// WithSessionAskOptions sets default query options for every Ask.
func WithSessionAskOptions(opts ...Option) SessionOption {
	return core.WithSessionAskOptions(opts...)
}

// Sentinel errors of the v2 API; match with errors.Is.
var (
	// ErrNotTrained is returned when a query arrives before training.
	ErrNotTrained = core.ErrNotTrained
	// ErrUnknownCategory marks an item outside the configured category
	// universe.
	ErrUnknownCategory = core.ErrUnknownCategory
	// ErrInvalidObservation marks a rejected ObserveBatch entry.
	ErrInvalidObservation = core.ErrInvalidObservation
	// ErrShardUnavailable marks a degraded sharded deployment: one or more
	// shards were unreachable, so the call's results (still returned) may
	// be missing those shards' owned users, and ingested batches were not
	// replicated everywhere. The router excludes failed shards and
	// re-includes them automatically once they pass a health probe after a
	// snapshot handoff; see OPERATIONS.md for the recovery runbook.
	ErrShardUnavailable = shard.ErrShardUnavailable
)

// WithK sets the number of users a query returns (default core.DefaultK).
func WithK(k int) Option { return core.WithK(k) }

// WithParallelism overrides the partitioned-search worker count for one
// call; n <= 0 keeps the engine's configured value.
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithoutExpansion disables proximity entity expansion for one call.
func WithoutExpansion() Option { return core.WithoutExpansion() }

// Recommender is the assembled ssRec system: either one in-process engine
// (New, or Open without options) or a sharded scatter-gather deployment
// (Open with WithShards) behind the same method set. The two are
// observably equivalent — identical rankings, scores and order — which the
// conformance suite in internal/shard enforces.
type Recommender struct {
	eng    *core.Engine  // single-engine deployment; nil when sharded
	router *shard.Router // sharded deployment; nil when single-engine
	cfg    Config        // the Open config (remote Train builds from it)
	remote bool          // true when the shards live behind WithRemoteShards
}

// OpenOption configures Open.
type OpenOption func(*openOptions)

type openOptions struct {
	shards    int
	replicas  int
	addrs     []string
	authToken string
}

// WithAuthToken authenticates every shard RPC call of a WithRemoteShards
// deployment as "Authorization: Bearer <token>" — pair it with
// ssrec-shardd -auth-token. It has no effect on in-process deployments.
func WithAuthToken(token string) OpenOption {
	return func(o *openOptions) { o.authToken = token }
}

// WithShards serves the recommender as an n-shard deployment: user blocks
// are partitioned across n engine shards and every query is scattered to
// all of them under a shared score bound (see internal/shard). n <= 1 is
// the ordinary single engine.
func WithShards(n int) OpenOption {
	return func(o *openOptions) { o.shards = n }
}

// WithReplicas replicates every shard slot r ways (r <= 1 keeps single
// replicas). Writes broadcast to every replica of a slot — the
// micro-batch stays the atomic replication unit, so results remain
// bit-identical to the single engine — while each query's scatter leg is
// load-balanced across the slot's healthy replicas by latency EWMA. A
// slot stays fully available while ANY of its replicas survives, and a
// crashed replica is re-seeded from a healthy sibling (by the supervisor,
// see shard.Router.StartSupervisor, or a manual Handoff).
//
// In-process (WithShards) it composes as n*r engines; with
// WithRemoteShards the address list must be slot-major with n*r entries:
// addrs[i*r : (i+1)*r] are the replicas of slot i.
func WithReplicas(r int) OpenOption {
	return func(o *openOptions) { o.replicas = r }
}

// WithRemoteShards serves the recommender from remote shardd processes
// (cmd/ssrec-shardd), one per address, in shard-index order: addrs[i] is
// shard i of a len(addrs)-wide deployment. The same scatter-gather
// protocol as WithShards runs over HTTP/2 — shared-lower-bound pruning,
// micro-batch replication, observably identical results — plus health
// probing with failover: an unreachable shard is excluded, calls carry
// ErrShardUnavailable alongside partial results, and the shard rejoins
// after a snapshot handoff (see Handoff and OPERATIONS.md).
//
// No I/O happens at Open: connections dial lazily and blank shardds boot
// on the first Train or Handoff call. WithRemoteShards takes precedence
// over WithShards when both are given.
func WithRemoteShards(addrs ...string) OpenOption {
	return func(o *openOptions) { o.addrs = addrs }
}

// Open creates a recommender with deployment options. Open(cfg) is
// equivalent to New(cfg).
func Open(cfg Config, opts ...OpenOption) *Recommender {
	var o openOptions
	for _, opt := range opts {
		opt(&o)
	}
	if len(o.addrs) > 0 {
		if o.replicas > 1 {
			// Errors only on an empty or non-divisible address list; the
			// former is checked above and the latter panics loudly below
			// rather than silently serving a mis-shaped fleet.
			router, err := shardrpc.DialReplicaRouterAuth(o.addrs, o.replicas, o.authToken)
			if err != nil {
				panic(fmt.Sprintf("ssrec: WithRemoteShards/WithReplicas: %v", err))
			}
			return &Recommender{router: router, cfg: cfg, remote: true}
		}
		// DialRouterAuth errors only on an empty address list, checked above.
		router, _ := shardrpc.DialRouterAuth(o.addrs, o.authToken)
		return &Recommender{router: router, cfg: cfg, remote: true}
	}
	if o.shards > 1 {
		if o.replicas > 1 {
			// NewReplicated errors only on n < 1 or rep < 1, excluded here.
			router, _ := shard.NewReplicated(cfg, o.shards, o.replicas)
			return &Recommender{router: router, cfg: cfg}
		}
		return &Recommender{router: shard.New(cfg, o.shards), cfg: cfg}
	}
	return &Recommender{eng: core.New(cfg), cfg: cfg}
}

// New creates a single-engine recommender. Config.Categories is required.
func New(cfg Config) *Recommender {
	return Open(cfg)
}

// Shards reports the deployment width (1 for a single engine).
func (r *Recommender) Shards() int {
	if r.router != nil {
		return r.router.Shards()
	}
	return 1
}

// Engine exposes the underlying single engine for advanced use
// (persistence, experiments). It is nil for a sharded deployment — the
// shards are managed through the router and must not be mutated
// individually.
func (r *Recommender) Engine() *core.Engine { return r.eng }

// Router exposes the shard router of a sharded deployment (nil for a
// single engine).
func (r *Recommender) Router() *shard.Router { return r.router }

// Name identifies the configured system arm.
func (r *Recommender) Name() string {
	if r.router != nil {
		return fmt.Sprintf("ssRec[%d shards]", r.router.Shards())
	}
	return r.eng.Name()
}

// Train bootstraps the recommender on a batch of items and interactions.
// A sharded deployment trains once and boots every shard from the
// resulting snapshot; a remote deployment (WithRemoteShards) additionally
// ships that snapshot to every shardd over the handoff protocol, so ONE
// Train call boots the whole fleet.
func (r *Recommender) Train(items []Item, interactions []Interaction, resolve func(string) (Item, bool)) error {
	if r.remote {
		eng := core.New(r.cfg)
		if err := eng.Train(items, interactions, resolve); err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := eng.SaveTo(&buf); err != nil {
			return fmt.Errorf("ssrec: snapshot trained engine: %w", err)
		}
		return r.router.HandoffSnapshot(context.Background(), buf.Bytes())
	}
	if r.router != nil {
		return r.router.Train(items, interactions, resolve)
	}
	return r.eng.Train(items, interactions, resolve)
}

// Handoff ships a trained-engine snapshot (Engine.SaveTo / core.SaveFile
// bytes) to every remote shard and re-includes recovered ones — the boot
// path for a pre-trained model ("one -save run, N boots") and the
// recovery runbook step after a shardd restart. It is a no-op for
// in-process deployments, whose shards boot through Train.
func (r *Recommender) Handoff(ctx context.Context, snapshot []byte) error {
	if r.router == nil {
		return nil
	}
	return r.router.HandoffSnapshot(ctx, snapshot)
}

// TrainDataset bootstraps the recommender on the leading fraction of a
// dataset's interaction stream (the paper trains on the first 2 of 6
// partitions, i.e. fraction 1/3).
func (r *Recommender) TrainDataset(ds *Dataset, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("ssrec: fraction %v out of (0,1]", fraction)
	}
	n := int(float64(len(ds.d.Interactions)) * fraction)
	return r.Train(ds.d.Items, ds.d.Interactions[:n], ds.d.Item)
}

// RecommendCtx is the v2 single-item query (see core.Engine.RecommendCtx).
func (r *Recommender) RecommendCtx(ctx context.Context, v Item, opts ...Option) (Result, error) {
	if r.router != nil {
		return r.router.RecommendCtx(ctx, v, opts...)
	}
	return r.eng.RecommendCtx(ctx, v, opts...)
}

// RecommendBatch is the v2 multi-item query (see core.Engine.RecommendBatch).
func (r *Recommender) RecommendBatch(ctx context.Context, items []Item, opts ...Option) ([]Result, error) {
	if r.router != nil {
		return r.router.RecommendBatch(ctx, items, opts...)
	}
	return r.eng.RecommendBatch(ctx, items, opts...)
}

// ObserveBatch is the v2 micro-batched stream ingest (see
// core.Engine.ObserveBatch). On a sharded deployment the batch is the
// atomic replication unit: it is broadcast to every shard uncancellably,
// and cancellation applies between batches.
func (r *Recommender) ObserveBatch(ctx context.Context, batch []Observation) (BatchReport, error) {
	if r.router != nil {
		return r.router.ObserveBatch(ctx, batch)
	}
	return r.eng.ObserveBatch(ctx, batch)
}

// OpenSession turns the request/response API into the paper's standing
// stream loop: ONE ordered full-duplex stream carrying interleaved
// observations (Push) and queries (Ask), answered in admission order on
// the Results channel. Every answer reflects exactly the events admitted
// before it — pushed observations are micro-batched (one ObserveBatch per
// WithSessionBatch-sized group) and every Ask is a barrier that admits
// the pending batch first. Replaying a Push/Ask interleaving through a
// session is bit-identical to issuing the same ObserveBatch /
// RecommendBatch calls by hand, on every deployment shape (single engine,
// WithShards, WithRemoteShards) — the session conformance suite enforces
// it.
//
// The context bounds the session's lifetime; Close flushes and drains
// cleanly. With WithAutoRecommend(k), every item first seen in a pushed
// observation is answered automatically. The wire equivalent is POST
// /v2/session (see internal/server and DESIGN.md, "Session protocol").
func (r *Recommender) OpenSession(ctx context.Context, opts ...SessionOption) *Session {
	return core.NewSession(ctx, r, opts...)
}

// Recommend is the v1 query: top-k users for an incoming item.
func (r *Recommender) Recommend(v Item, k int) []Recommendation {
	if r.router != nil {
		return r.router.Recommend(v, k)
	}
	return r.eng.Recommend(v, k)
}

// Observe is the v1 single-interaction ingest.
func (r *Recommender) Observe(ir Interaction, v Item) {
	if r.router != nil {
		r.router.Observe(ir, v)
		return
	}
	r.eng.Observe(ir, v)
}

// RegisterItem tells the deployment about a newly arrived item.
func (r *Recommender) RegisterItem(v Item) {
	if r.router != nil {
		r.router.RegisterItem(v)
		return
	}
	r.eng.RegisterItem(v)
}

// Users reports the number of tracked profiles.
func (r *Recommender) Users() int {
	if r.router != nil {
		return r.router.Users()
	}
	return r.eng.Users()
}

// Evaluate runs the paper's stream-simulation protocol (6 timestamp
// partitions, train on 2, test on 4) against this recommender's fresh
// configuration and returns precision/latency metrics.
func Evaluate(cfg Config, ds *Dataset, ks []int) (EvalResult, error) {
	res, err := evalx.Run(core.New(cfg), ds.d, evalx.Setup{}, ks)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{
		System:             res.System,
		PAtK:               res.PAtK,
		ItemsTested:        res.ItemsTested,
		RecommendLatencyNs: res.RecommendLatency.Nanoseconds(),
		UpdateLatencyNs:    res.UpdateLatency.Nanoseconds(),
	}, nil
}

// EvalResult summarises one evaluation run.
type EvalResult struct {
	System             string
	PAtK               map[int]float64
	ItemsTested        int
	RecommendLatencyNs int64
	UpdateLatencyNs    int64
}

// Dataset is a collection of items and time-ordered interactions.
type Dataset struct {
	d *dataset.Dataset
}

// GenerateYTubeLike builds a synthetic dataset with the shape of the
// paper's YTube crawl (19 categories, many items, producer-driven
// consumer behavior). scale 1.0 ≈ laptop default; seed fixes the run.
func GenerateYTubeLike(scale float64, seed int64) *Dataset {
	cfg := dataset.YTubeConfig(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	return &Dataset{d: dataset.Generate(cfg)}
}

// GenerateMLensLike builds a synthetic dataset with the shape of the
// paper's derived MovieLens collection (15 categories, dense
// interactions per item).
func GenerateMLensLike(scale float64, seed int64) *Dataset {
	cfg := dataset.MLensConfig(scale)
	if seed != 0 {
		cfg.Seed = seed
	}
	return &Dataset{d: dataset.Generate(cfg)}
}

// Replicate produces a synthpop-style synthetic twin of a dataset
// (the paper's SynYTube/SynMLens construction).
func Replicate(src *Dataset, name string, seed int64) *Dataset {
	return &Dataset{d: dataset.Replicate(src.d, name, seed)}
}

// Name returns the dataset's name.
func (ds *Dataset) Name() string { return ds.d.Name }

// Categories returns the category universe.
func (ds *Dataset) Categories() []string { return append([]string(nil), ds.d.Categories...) }

// Items returns the items in timestamp order.
func (ds *Dataset) Items() []Item { return ds.d.Items }

// Interactions returns the interactions in timestamp order.
func (ds *Dataset) Interactions() []Interaction { return ds.d.Interactions }

// Item resolves an item by ID.
func (ds *Dataset) Item(id string) (Item, bool) { return ds.d.Item(id) }

// Summary returns the Table III row for the dataset.
func (ds *Dataset) Summary() string { return ds.d.ComputeStats().String() }

// SaveFile / LoadFile persist datasets as gzip-compressed gob.
func (ds *Dataset) SaveFile(path string) error { return ds.d.SaveFile(path) }

// LoadDataset reads a dataset written by SaveFile.
func LoadDataset(path string) (*Dataset, error) {
	d, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}
