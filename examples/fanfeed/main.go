// Fan feed: the paper's near-duplicate fatigue example (§I) — "John
// watched a video of Rafael Nadal ... He may get bored after watching
// Nadal's videos repeatedly. Probably he is interested in the videos on
// other tennis players as well, such as Roger Federer". Entity expansion
// learns Nadal↔Federer co-occurrence from item descriptions and lifts the
// related-but-fresh item for Nadal fans.
package main

import (
	"context"
	"fmt"
	"log"

	"ssrec"
)

func main() {
	const catTennis = "tennis"
	var clock int64 = 1_700_000_000
	tick := func() int64 { clock += 300; return clock }

	var items []ssrec.Item
	var irs []ssrec.Interaction
	byID := map[string]ssrec.Item{}
	record := func(id string, ents []string, viewers ...string) {
		v := ssrec.Item{ID: id, Category: catTennis, Producer: "atp-channel",
			Entities: ents, Timestamp: tick()}
		items = append(items, v)
		byID[v.ID] = v
		for _, u := range viewers {
			irs = append(irs, ssrec.Interaction{UserID: u, ItemID: v.ID, Timestamp: v.Timestamp + 10})
		}
	}

	// Broadcast coverage pairs the rivals constantly (finals, highlight
	// reels) — that co-occurrence is what the expander learns from.
	for i := 0; i < 20; i++ {
		record(fmt.Sprintf("final%02d", i), []string{"Nadal", "Federer", "final"},
			"press", "press2")
		// John only ever watches Nadal-centric clips.
		record(fmt.Sprintf("nadal%02d", i), []string{"Nadal", "claycourt"}, "john")
		// A control user watches golf-adjacent filler in the same feed.
		record(fmt.Sprintf("filler%02d", i), []string{"exhibition"}, "norma")
	}

	rec := ssrec.New(ssrec.Config{Categories: []string{catTennis}})
	if err := rec.Train(items, irs, func(id string) (ssrec.Item, bool) {
		v, ok := byID[id]
		return v, ok
	}); err != nil {
		log.Fatal(err)
	}

	// The near-duplicate: yet another Nadal clip. John still ranks high —
	// relevance — but the interesting case is the Federer clip: John has
	// never watched one, yet expansion ranks him as a target, giving his
	// feed diversity instead of the hundredth Nadal repeat. Both incoming
	// clips are answered in one RecommendBatch call (the v2 batch path).
	batch := []ssrec.Item{
		{ID: "nadal-again", Category: catTennis, Producer: "atp-channel",
			Entities: []string{"Nadal", "claycourt"}, Timestamp: tick()},
		{ID: "federer-special", Category: catTennis, Producer: "atp-channel",
			Entities: []string{"Federer"}, Timestamp: tick()},
	}
	results, err := rec.RecommendBatch(context.Background(), batch, ssrec.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("\n%s %v:\n", res.ItemID, batch[i].Entities)
		for j, r := range res.Recommendations {
			fmt.Printf("  %d. %s (score %.2f)\n", j+1, r.UserID, r.Score)
		}
	}
}
