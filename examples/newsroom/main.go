// Newsroom: the paper's motivating news-broadcasting scenario (§I). John
// regularly watches movies, but when a crisis breaks out he follows the
// coverage — his *short-term* interest shifts while his *long-term*
// interest stays put. ssRec's windowed profile plus the λs blend makes the
// recommender deliver breaking-news items to John during the burst and
// movie items again afterwards.
package main

import (
	"context"
	"fmt"
	"log"

	"ssrec"
)

const (
	catMovies = "movies"
	catNews   = "news"
	catSports = "sports"
)

func item(id, cat, producer string, ents ...string) ssrec.Item {
	return ssrec.Item{ID: id, Category: cat, Producer: producer, Entities: ents,
		Description: fmt.Sprint(ents), Timestamp: itemClock()}
}

var clock int64 = 1_500_000_000

func itemClock() int64 { clock += 60; return clock }

func main() {
	// Training world: John watches movies every evening; Dana watches
	// sports; a handful of filler users watch a mix. The "frontline"
	// producer posts news items nobody has cared about yet.
	var items []ssrec.Item
	var irs []ssrec.Interaction
	byID := map[string]ssrec.Item{}
	record := func(v ssrec.Item, viewers ...string) {
		items = append(items, v)
		byID[v.ID] = v
		for _, u := range viewers {
			irs = append(irs, ssrec.Interaction{UserID: u, ItemID: v.ID, Timestamp: v.Timestamp + 30})
		}
	}

	for i := 0; i < 30; i++ {
		record(item(fmt.Sprintf("movie%02d", i), catMovies, "studio", "thriller", "premiere"),
			"john", fmt.Sprintf("filler%d", i%3))
		record(item(fmt.Sprintf("match%02d", i), catSports, "espn", "football", "league"),
			"dana", fmt.Sprintf("filler%d", i%3))
		if i%3 == 0 {
			record(item(fmt.Sprintf("brief%02d", i), catNews, "frontline", "politics", "summit"),
				fmt.Sprintf("filler%d", i%3))
		}
	}

	rec := ssrec.New(ssrec.Config{
		Categories: []string{catMovies, catNews, catSports},
		WindowSize: 5,
		LambdaS:    0.4,
	})
	resolve := func(id string) (ssrec.Item, bool) { v, ok := byID[id]; return v, ok }
	if err := rec.Train(items, irs, resolve); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	rank := func(v ssrec.Item, user string) int {
		res, err := rec.RecommendCtx(ctx, v, ssrec.WithK(10))
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range res.Recommendations {
			if r.UserID == user {
				return i + 1
			}
		}
		return -1
	}

	breaking := item("crisis00", catNews, "frontline", "crisis", "frontline-report")
	byID[breaking.ID] = breaking
	fmt.Printf("before the burst: breaking-news item ranks John at position %d\n",
		rank(breaking, "john"))

	// The burst: John follows the crisis coverage — five interactions
	// fill his short-term window with news, ingested as one micro-batch
	// (one write lock, one index flush).
	var burst []ssrec.Observation
	for i := 0; i < 5; i++ {
		v := item(fmt.Sprintf("crisis%02d", i+1), catNews, "frontline", "crisis", "frontline-report")
		byID[v.ID] = v
		burst = append(burst, ssrec.Observation{UserID: "john", Item: v, Timestamp: v.Timestamp + 5})
	}
	if _, err := rec.ObserveBatch(ctx, burst); err != nil {
		log.Fatal(err)
	}

	followUp := item("crisis99", catNews, "frontline", "crisis", "frontline-report")
	byID[followUp.ID] = followUp
	fmt.Printf("during the burst:  follow-up coverage ranks John at position %d\n",
		rank(followUp, "john"))

	newMovie := item("blockbuster", catMovies, "studio", "thriller", "premiere")
	byID[newMovie.ID] = newMovie
	fmt.Printf("long-term intact:  a new movie still ranks John at position %d\n",
		rank(newMovie, "john"))
}
