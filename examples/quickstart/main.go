// Quickstart: generate a social-media workload, train an ssRec recommender
// on the leading third of the interaction stream, then replay the rest —
// recommending every new item to its top-5 users and feeding interactions
// back for streaming maintenance.
package main

import (
	"fmt"
	"log"

	"ssrec"
)

func main() {
	// A YTube-shaped synthetic workload: 19 categories, producers with
	// regime-switching output, consumers that follow producers.
	ds := ssrec.GenerateYTubeLike(0.25, 42)
	fmt.Println("dataset:", ds.Summary())

	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		log.Fatal(err)
	}

	// Replay the tail of the stream.
	items := ds.Items()
	interactions := ds.Interactions()
	cut := interactions[len(interactions)/3].Timestamp

	streamed, recommended := 0, 0
	for _, v := range items {
		if v.Timestamp <= cut || streamed >= 10 {
			continue
		}
		streamed++
		top := rec.Recommend(v, 5)
		if len(top) == 0 {
			continue
		}
		recommended++
		fmt.Printf("\nitem %s (%s by %s):\n", v.ID, v.Category, v.Producer)
		for i, r := range top {
			fmt.Printf("  %d. deliver to %s (score %.2f)\n", i+1, r.UserID, r.Score)
		}
	}

	// Streaming maintenance: interactions keep profiles and the index
	// fresh (short-term windows, producer regimes, new entities).
	fed := 0
	for _, ir := range interactions {
		if ir.Timestamp <= cut || fed >= 500 {
			continue
		}
		if v, ok := ds.Item(ir.ItemID); ok {
			rec.Observe(ir, v)
			fed++
		}
	}
	fmt.Printf("\nstreamed %d items, recommended %d, fed %d interactions back\n",
		streamed, recommended, fed)
}
