// Quickstart: generate a social-media workload, train an ssRec recommender
// on the leading third of the interaction stream, then replay the rest —
// recommending every new item to its top-5 users (RecommendCtx) and
// feeding interactions back in micro-batches (ObserveBatch) for streaming
// maintenance.
package main

import (
	"context"
	"fmt"
	"log"

	"ssrec"
)

func main() {
	// A YTube-shaped synthetic workload: 19 categories, producers with
	// regime-switching output, consumers that follow producers.
	ds := ssrec.GenerateYTubeLike(0.25, 42)
	fmt.Println("dataset:", ds.Summary())

	rec := ssrec.New(ssrec.Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		log.Fatal(err)
	}

	// Replay the tail of the stream.
	items := ds.Items()
	interactions := ds.Interactions()
	cut := interactions[len(interactions)/3].Timestamp

	ctx := context.Background()
	streamed, recommended := 0, 0
	for _, v := range items {
		if v.Timestamp <= cut || streamed >= 10 {
			continue
		}
		streamed++
		res, err := rec.RecommendCtx(ctx, v, ssrec.WithK(5))
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Recommendations) == 0 {
			continue
		}
		recommended++
		fmt.Printf("\nitem %s (%s by %s):\n", v.ID, v.Category, v.Producer)
		for i, r := range res.Recommendations {
			fmt.Printf("  %d. deliver to %s (score %.2f)\n", i+1, r.UserID, r.Score)
		}
	}

	// Streaming maintenance: interactions keep profiles and the index
	// fresh (short-term windows, producer regimes, new entities). Batched
	// ingestion takes one write lock + one index flush per micro-batch of
	// 64 instead of per event.
	var batch []ssrec.Observation
	fed, batches := 0, 0
	ingest := func() {
		if len(batch) == 0 {
			return
		}
		report, err := rec.ObserveBatch(ctx, batch)
		if err != nil {
			log.Fatal(err)
		}
		fed += report.Applied
		batches++
		batch = batch[:0]
	}
	for _, ir := range interactions {
		if ir.Timestamp <= cut || fed+len(batch) >= 500 {
			continue
		}
		if v, ok := ds.Item(ir.ItemID); ok {
			batch = append(batch, ssrec.Observation{UserID: ir.UserID, Item: v, Timestamp: ir.Timestamp})
			if len(batch) == 64 {
				ingest()
			}
		}
	}
	ingest()
	fmt.Printf("\nstreamed %d items, recommended %d, fed %d interactions back in %d micro-batches\n",
		streamed, recommended, fed, batches)
}
