// Ad campaign: the paper's product-promotion scenario (§I) — "a clip on a
// new KFC dessert can be broadcasted to the top interested users
// immediately after the uploading". A brand uploads a commercial; the
// recommender targets the k users with the highest relevance, and entity
// expansion widens the audience to users interested in *related* products
// they have never literally seen.
package main

import (
	"context"
	"fmt"
	"log"

	"ssrec"
)

func main() {
	const catFood = "food"
	var clock int64 = 1_600_000_000
	tick := func() int64 { clock += 120; return clock }

	var items []ssrec.Item
	var irs []ssrec.Interaction
	byID := map[string]ssrec.Item{}
	record := func(id string, ents []string, viewers ...string) {
		v := ssrec.Item{ID: id, Category: catFood, Producer: "foodtube",
			Entities: ents, Timestamp: tick()}
		items = append(items, v)
		byID[v.ID] = v
		for _, u := range viewers {
			irs = append(irs, ssrec.Interaction{UserID: u, ItemID: v.ID, Timestamp: v.Timestamp + 10})
		}
	}

	// Dessert lovers watch sundae/milkshake clips where "dessert" often
	// co-occurs — the expansion signal. Savoury fans watch burger clips.
	for i := 0; i < 25; i++ {
		record(fmt.Sprintf("sundae%02d", i), []string{"sundae", "dessert", "icecream"},
			"amy", "bella")
		record(fmt.Sprintf("shake%02d", i), []string{"milkshake", "dessert"},
			"chloe")
		record(fmt.Sprintf("burger%02d", i), []string{"burger", "fries"},
			"derek", "evan")
	}

	// One engine serves both arms: the v2 WithoutExpansion option toggles
	// expansion per call, so no second training run is needed.
	rec := ssrec.New(ssrec.Config{Categories: []string{catFood}})
	if err := rec.Train(items, irs, func(id string) (ssrec.Item, bool) {
		v, ok := byID[id]
		return v, ok
	}); err != nil {
		log.Fatal(err)
	}

	// The campaign item mentions a brand-new dessert. Nobody has seen
	// "choco-lava" before; "dessert" ties it to the dessert lovers.
	ad := ssrec.Item{ID: "campaign", Category: catFood, Producer: "kfc",
		Entities: []string{"choco-lava", "dessert"}, Timestamp: tick()}

	ctx := context.Background()
	for _, expansion := range []bool{false, true} {
		opts := []ssrec.Option{ssrec.WithK(3)}
		if !expansion {
			opts = append(opts, ssrec.WithoutExpansion())
		}
		res, err := rec.RecommendCtx(ctx, ad, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntargeting with expansion=%v:\n", expansion)
		for i, r := range res.Recommendations {
			fmt.Printf("  %d. %s (score %.2f)\n", i+1, r.UserID, r.Score)
		}
	}
	fmt.Println("\nwith expansion on, the dessert cohort (amy, bella, chloe) outranks")
	fmt.Println("the savoury cohort even though none of them ever saw \"choco-lava\".")
}
