module ssrec

go 1.24
