package ssrec

import (
	"net"

	"context"
	"errors"
	"reflect"
	"ssrec/internal/shardrpc"
	"testing"
)

// TestPublicV2Flow exercises the batch-first v2 surface end to end through
// the public package: options, sentinel errors, batch ingestion, and
// v1/v2 equivalence.
func TestPublicV2Flow(t *testing.T) {
	ds := GenerateYTubeLike(0.2, 9)
	rec := New(Config{Categories: ds.Categories(), TrainMaxIter: 5, Restarts: 1})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		t.Fatalf("TrainDataset: %v", err)
	}
	ctx := context.Background()
	items := ds.Items()
	v := items[len(items)-1]

	res, err := rec.RecommendCtx(ctx, v, WithK(10))
	if err != nil {
		t.Fatalf("RecommendCtx: %v", err)
	}
	if !reflect.DeepEqual(res.Recommendations, rec.Recommend(v, 10)) {
		t.Fatal("RecommendCtx diverged from Recommend")
	}

	if _, err := rec.RecommendCtx(ctx, Item{ID: "x", Category: "nope"}); !errors.Is(err, ErrUnknownCategory) {
		t.Fatalf("err = %v, want ErrUnknownCategory", err)
	}

	results, err := rec.RecommendBatch(ctx, items[len(items)-4:], WithK(5), WithParallelism(2))
	if err != nil {
		t.Fatalf("RecommendBatch: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results, want 4", len(results))
	}

	report, err := rec.ObserveBatch(ctx, []Observation{
		{UserID: res.Recommendations[0].UserID, Item: v, Timestamp: v.Timestamp + 5},
		{UserID: "", Item: v, Timestamp: v.Timestamp + 6}, // rejected
	})
	if err != nil {
		t.Fatalf("ObserveBatch: %v", err)
	}
	if report.Applied != 1 || report.Rejected != 1 {
		t.Fatalf("report = %+v", report)
	}
	if !errors.Is(report.Errors[0].Err, ErrInvalidObservation) {
		t.Fatalf("rejection error = %v", report.Errors[0].Err)
	}
}

// TestPublicShardedFlow: Open(WithShards(n)) serves the same API and the
// same answers as the single engine — the public-surface statement of the
// internal/shard conformance contract.
func TestPublicShardedFlow(t *testing.T) {
	ds := GenerateYTubeLike(0.2, 9)
	cfg := Config{Categories: ds.Categories(), TrainMaxIter: 5, Restarts: 1}
	single := New(cfg)
	sharded := Open(cfg, WithShards(3))
	if single.Shards() != 1 || sharded.Shards() != 3 {
		t.Fatalf("Shards() = %d / %d", single.Shards(), sharded.Shards())
	}
	if single.Engine() == nil || sharded.Engine() != nil {
		t.Fatal("Engine accessor: single must expose one, sharded must not")
	}
	if sharded.Router() == nil {
		t.Fatal("sharded deployment has no router")
	}
	for _, r := range []*Recommender{single, sharded} {
		if err := r.TrainDataset(ds, 1.0/3); err != nil {
			t.Fatalf("TrainDataset: %v", err)
		}
	}
	if single.Users() != sharded.Users() {
		t.Fatalf("Users: %d vs %d", single.Users(), sharded.Users())
	}
	ctx := context.Background()
	items := ds.Items()
	checked := 0
	for i := len(items) - 8; i < len(items); i++ {
		a, errA := single.RecommendCtx(ctx, items[i], WithK(10))
		b, errB := sharded.RecommendCtx(ctx, items[i], WithK(10))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("item %s: errs %v vs %v", items[i].ID, errA, errB)
		}
		if !reflect.DeepEqual(a.Recommendations, b.Recommendations) {
			t.Fatalf("item %s: sharded deployment diverged\n single  %v\n sharded %v",
				items[i].ID, a.Recommendations, b.Recommendations)
		}
		checked++
		// Keep the streams in lockstep.
		obs := []Observation{{UserID: "shard-flow-user", Item: items[i], Timestamp: items[i].Timestamp + 1}}
		if _, err := single.ObserveBatch(ctx, obs); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.ObserveBatch(ctx, obs); err != nil {
			t.Fatal(err)
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	ds := GenerateYTubeLike(0.2, 9)
	rec := New(Config{Categories: ds.Categories(), TrainMaxIter: 5, Restarts: 1})
	if err := rec.TrainDataset(ds, 1.0/3); err != nil {
		t.Fatalf("TrainDataset: %v", err)
	}
	items := ds.Items()
	v := items[len(items)-1]
	recs := rec.Recommend(v, 10)
	if len(recs) == 0 {
		t.Fatal("no recommendations for latest item")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("results unsorted")
		}
	}
	// Streaming maintenance.
	ir := Interaction{UserID: recs[0].UserID, ItemID: v.ID, Timestamp: v.Timestamp + 5}
	rec.Observe(ir, v)
}

func TestTrainDatasetFractionValidation(t *testing.T) {
	ds := GenerateYTubeLike(0.15, 3)
	rec := New(Config{Categories: ds.Categories()})
	if err := rec.TrainDataset(ds, 0); err == nil {
		t.Error("fraction 0 accepted")
	}
	if err := rec.TrainDataset(ds, 1.5); err == nil {
		t.Error("fraction 1.5 accepted")
	}
}

func TestEvaluatePublic(t *testing.T) {
	ds := GenerateYTubeLike(0.15, 4)
	res, err := Evaluate(Config{Categories: ds.Categories(), TrainMaxIter: 4, Restarts: 1}, ds, []int{5, 10})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.System != "ssRec" || res.ItemsTested == 0 {
		t.Fatalf("result = %+v", res)
	}
	for _, k := range []int{5, 10} {
		if p := res.PAtK[k]; p < 0 || p > 1 {
			t.Errorf("P@%d = %v", k, p)
		}
	}
}

func TestDatasetAccessors(t *testing.T) {
	ds := GenerateMLensLike(0.15, 5)
	if ds.Name() != "MLens" {
		t.Errorf("Name = %s", ds.Name())
	}
	if len(ds.Categories()) != 15 {
		t.Errorf("categories = %d", len(ds.Categories()))
	}
	if len(ds.Items()) == 0 || len(ds.Interactions()) == 0 {
		t.Fatal("empty dataset")
	}
	if _, ok := ds.Item(ds.Items()[0].ID); !ok {
		t.Error("Item lookup broken")
	}
	if ds.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestReplicateAndPersistence(t *testing.T) {
	src := GenerateYTubeLike(0.15, 6)
	syn := Replicate(src, "SynTest", 7)
	if syn.Name() != "SynTest" {
		t.Errorf("Name = %s", syn.Name())
	}
	if len(syn.Items()) != len(src.Items()) {
		t.Errorf("item count mismatch: %d vs %d", len(syn.Items()), len(src.Items()))
	}
	path := t.TempDir() + "/ds.bin"
	if err := syn.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatalf("LoadDataset: %v", err)
	}
	if len(got.Items()) != len(syn.Items()) {
		t.Error("round-trip lost items")
	}
}

// TestPublicRemoteShards exercises the WithRemoteShards wiring end to
// end through the public package: lazy Open, the remote Train path
// (train once locally, snapshot, handoff to every shardd), and
// observable equivalence with a single-engine recommender over live
// loopback HTTP/2 shards.
func TestPublicRemoteShards(t *testing.T) {
	ds := GenerateYTubeLike(0.15, 13)
	cfg := Config{Categories: ds.Categories(), TrainMaxIter: 3, Restarts: 1, Seed: 13}

	// Two blank loopback shardd handlers.
	addrs := make([]string, 2)
	for i := range addrs {
		srv, err := shardrpc.NewServer(i, len(addrs))
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		hs := srv.NewHTTPServer(ln.Addr().String())
		go hs.Serve(ln) //nolint:errcheck
		t.Cleanup(func() { hs.Close() })
		addrs[i] = ln.Addr().String()
	}

	single := New(cfg)
	remote := Open(cfg, WithRemoteShards(addrs...))
	if remote.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", remote.Shards())
	}
	if err := single.TrainDataset(ds, 1.0/3); err != nil {
		t.Fatalf("train single: %v", err)
	}
	if err := remote.TrainDataset(ds, 1.0/3); err != nil {
		t.Fatalf("train remote (handoff): %v", err)
	}

	ctx := context.Background()
	items := ds.Items()
	for _, v := range items[len(items)-4:] {
		want, werr := single.RecommendCtx(ctx, v, WithK(10))
		got, gerr := remote.RecommendCtx(ctx, v, WithK(10))
		if werr != nil || gerr != nil {
			t.Fatalf("item %s: errs %v / %v", v.ID, werr, gerr)
		}
		if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
			t.Fatalf("item %s: remote deployment diverged\n got %v\nwant %v",
				v.ID, got.Recommendations, want.Recommendations)
		}
	}

	// Batched ingestion replicates with a matching report.
	obs := []Observation{
		{UserID: "ru1", Item: items[0], Timestamp: items[0].Timestamp + 1},
		{UserID: "", Item: items[1], Timestamp: items[1].Timestamp + 1}, // rejected
	}
	want, werr := single.ObserveBatch(ctx, obs)
	got, gerr := remote.ObserveBatch(ctx, obs)
	if werr != nil || gerr != nil {
		t.Fatalf("observe errs: %v / %v", werr, gerr)
	}
	if got.Applied != want.Applied || got.Rejected != want.Rejected || got.Flushed != want.Flushed {
		t.Fatalf("report %+v, want %+v", got, want)
	}
	if len(got.Errors) != 1 || !errors.Is(got.Errors[0].Err, ErrInvalidObservation) {
		t.Fatalf("per-entry errors = %+v", got.Errors)
	}
}
